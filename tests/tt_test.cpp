// TT machinery tests: TT-SVD reconstruction, merge contractions (STT full
// kernel, PTT cross kernel, half pointwise kernel), and VBMF rank recovery.

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/linalg.h"
#include "tensor/ops.h"
#include "tt/tt_cores.h"
#include "tt/tt_svd.h"
#include "tt/vbmf.h"

namespace ttsnn {
namespace {

TTCores random_cores(int64_t in_c, int64_t out_c, int64_t k, int64_t r, Rng& rng) {
  TTCores c{.in_channels = in_c, .out_channels = out_c, .kernel = k, .rank = r};
  c.w1 = Tensor::randn({r, in_c, 1, 1}, rng);
  c.w2 = Tensor::randn({r, r, k, 1}, rng);
  c.w3 = Tensor::randn({r, r, 1, k}, rng);
  c.w4 = Tensor::randn({out_c, r, 1, 1}, rng);
  return c;
}

TEST(TTCoresTest, ParamCountFormula) {
  EXPECT_EQ(tt_num_params(64, 128, 3, 16), 16 * 64 + 2 * 3 * 16 * 16 + 128 * 16);
  Rng rng(1);
  TTCores c = random_cores(8, 12, 3, 4, rng);
  EXPECT_EQ(c.num_params(),
            c.w1.numel() + c.w2.numel() + c.w3.numel() + c.w4.numel());
}

TEST(TTCoresTest, CheckRejectsBadShapes) {
  Rng rng(2);
  TTCores c = random_cores(8, 12, 3, 4, rng);
  EXPECT_NO_THROW(c.check());
  c.w2 = Tensor::zeros({4, 4, 1, 3});  // swapped strip orientation
  EXPECT_THROW(c.check(), Error);
}

TEST(MergeTest, SttMergeMatchesExplicitContraction) {
  Rng rng(3);
  TTCores c = random_cores(3, 4, 3, 2, rng);
  Tensor dense = merge_stt(c);
  EXPECT_EQ(dense.shape(), (Shape{4, 3, 3, 3}));
  // Explicit 7-loop contraction.
  for (int64_t o = 0; o < 4; ++o) {
    for (int64_t i = 0; i < 3; ++i) {
      for (int64_t y = 0; y < 3; ++y) {
        for (int64_t x = 0; x < 3; ++x) {
          double v = 0.0;
          for (int64_t r1 = 0; r1 < 2; ++r1) {
            for (int64_t r2 = 0; r2 < 2; ++r2) {
              for (int64_t r3 = 0; r3 < 2; ++r3) {
                v += c.w1.at({r1, i, 0, 0}) * c.w2.at({r2, r1, y, 0}) *
                     c.w3.at({r3, r2, 0, x}) * c.w4.at({o, r3, 0, 0});
              }
            }
          }
          EXPECT_NEAR(dense.at({o, i, y, x}), v, 1e-4)
              << "o=" << o << " i=" << i << " y=" << y << " x=" << x;
        }
      }
    }
  }
}

TEST(MergeTest, PttMergeHasCrossSupport) {
  // "3x3 without the four corner values" (Fig. 1c).
  Rng rng(4);
  TTCores c = random_cores(5, 6, 3, 3, rng);
  Tensor dense = merge_ptt(c);
  for (int64_t o = 0; o < 6; ++o) {
    for (int64_t i = 0; i < 5; ++i) {
      EXPECT_FLOAT_EQ(dense.at({o, i, 0, 0}), 0.0F);
      EXPECT_FLOAT_EQ(dense.at({o, i, 0, 2}), 0.0F);
      EXPECT_FLOAT_EQ(dense.at({o, i, 2, 0}), 0.0F);
      EXPECT_FLOAT_EQ(dense.at({o, i, 2, 2}), 0.0F);
    }
  }
  // Center receives both paths; off-center arms only one.
  double norm_arms = 0.0;
  for (int64_t o = 0; o < 6; ++o) {
    for (int64_t i = 0; i < 5; ++i) {
      norm_arms += std::fabs(dense.at({o, i, 0, 1})) +
                   std::fabs(dense.at({o, i, 1, 0}));
    }
  }
  EXPECT_GT(norm_arms, 0.0);
}

TEST(MergeTest, PttMergeMatchesExplicitContraction) {
  Rng rng(5);
  TTCores c = random_cores(3, 3, 3, 2, rng);
  Tensor dense = merge_ptt(c);
  const int64_t center = 1;
  for (int64_t o = 0; o < 3; ++o) {
    for (int64_t i = 0; i < 3; ++i) {
      for (int64_t y = 0; y < 3; ++y) {
        for (int64_t x = 0; x < 3; ++x) {
          double v = 0.0;
          if (x == center) {  // vertical path w1 * w2 * w4
            for (int64_t r1 = 0; r1 < 2; ++r1) {
              for (int64_t r2 = 0; r2 < 2; ++r2) {
                v += c.w1.at({r1, i, 0, 0}) * c.w2.at({r2, r1, y, 0}) *
                     c.w4.at({o, r2, 0, 0});
              }
            }
          }
          if (y == center) {  // horizontal path w1 * w3 * w4
            for (int64_t r1 = 0; r1 < 2; ++r1) {
              for (int64_t r3 = 0; r3 < 2; ++r3) {
                v += c.w1.at({r1, i, 0, 0}) * c.w3.at({r3, r1, 0, x}) *
                     c.w4.at({o, r3, 0, 0});
              }
            }
          }
          EXPECT_NEAR(dense.at({o, i, y, x}), v, 1e-4);
        }
      }
    }
  }
}

TEST(MergeTest, HalfMergeIsPointwiseProduct) {
  Rng rng(6);
  TTCores c = random_cores(4, 5, 3, 3, rng);
  Tensor half = merge_half(c);
  EXPECT_EQ(half.shape(), (Shape{5, 4, 1, 1}));
  for (int64_t o = 0; o < 5; ++o) {
    for (int64_t i = 0; i < 4; ++i) {
      double v = 0.0;
      for (int64_t r = 0; r < 3; ++r) {
        v += c.w4.at({o, r, 0, 0}) * c.w1.at({r, i, 0, 0});
      }
      EXPECT_NEAR(half.at({o, i, 0, 0}), v, 1e-5);
    }
  }
}

TEST(TtSvdTest, ExactRecoveryOfLowTtRankTensor) {
  // A tensor synthesized from rank-r cores must be reconstructed exactly by
  // tt_svd at the same rank.
  Rng rng(7);
  for (int64_t r : {1, 2, 4}) {
    TTCores gen = random_cores(8, 10, 3, r, rng);
    Tensor dense = merge_stt(gen);
    TTCores rec = tt_svd(dense, r);
    EXPECT_EQ(rec.rank, r);
    EXPECT_LT(tt_reconstruction_error(dense, rec), 1e-3) << "rank " << r;
  }
}

TEST(TtSvdTest, ErrorDecreasesWithRank) {
  Rng rng(8);
  Tensor dense = Tensor::randn({12, 12, 3, 3}, rng);
  double prev = 1e9;
  for (int64_t r : {1, 2, 4, 8, 12}) {
    TTCores c = tt_svd(dense, r);
    const double err = tt_reconstruction_error(dense, c);
    EXPECT_LE(err, prev + 1e-6) << "rank " << r;
    prev = err;
  }
}

TEST(TtSvdTest, RankClampedToChannels) {
  Rng rng(9);
  Tensor dense = Tensor::randn({4, 6, 3, 3}, rng);
  TTCores c = tt_svd(dense, 100);
  EXPECT_EQ(c.rank, 4);  // min(I=6, O=4)
}

TEST(TtSvdTest, RejectsEvenKernel) {
  Rng rng(10);
  Tensor dense = Tensor::randn({4, 4, 2, 2}, rng);
  EXPECT_THROW(tt_svd(dense, 2), Error);
}

TEST(TtSvdTest, CoreShapesMatchFig1) {
  Rng rng(11);
  Tensor dense = Tensor::randn({16, 8, 3, 3}, rng);
  TTCores c = tt_svd(dense, 5);
  EXPECT_EQ(c.w1.shape(), (Shape{5, 8, 1, 1}));
  EXPECT_EQ(c.w2.shape(), (Shape{5, 5, 3, 1}));
  EXPECT_EQ(c.w3.shape(), (Shape{5, 5, 1, 3}));
  EXPECT_EQ(c.w4.shape(), (Shape{16, 5, 1, 1}));
}

// ---- VBMF -------------------------------------------------------------------

Tensor planted_low_rank(int64_t l, int64_t m, int64_t rank, float signal,
                        float noise, Rng& rng) {
  Tensor u = Tensor::randn({l, rank}, rng);
  Tensor v = Tensor::randn({rank, m}, rng);
  Tensor y = matmul(u, v);
  y.mul_scalar_(signal / std::sqrt(static_cast<float>(rank)));
  Tensor n = Tensor::randn({l, m}, rng);
  n.mul_scalar_(noise);
  y.add_(n);
  return y;
}

class VbmfRankTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(VbmfRankTest, RecoversPlantedRank) {
  const int64_t rank = GetParam();
  Rng rng(static_cast<uint64_t>(100 + rank));
  Tensor y = planted_low_rank(40, 60, rank, 4.0F, 0.1F, rng);
  VbmfResult r = evbmf(y);
  EXPECT_EQ(r.rank, rank);
  EXPECT_EQ(static_cast<int64_t>(r.shrunk.size()), r.rank);
}

INSTANTIATE_TEST_SUITE_P(Ranks, VbmfRankTest, ::testing::Values(1, 2, 5, 10));

TEST(VbmfTest, PureNoiseGivesZeroOrTinyRank) {
  Rng rng(13);
  Tensor y = Tensor::randn({50, 80}, rng);
  VbmfResult r = evbmf(y);
  EXPECT_LE(r.rank, 2);
}

TEST(VbmfTest, KnownSigmaThresholding) {
  Rng rng(14);
  Tensor y = planted_low_rank(30, 50, 3, 5.0F, 0.1F, rng);
  VbmfResult r = evbmf(y, 0.01);  // sigma^2 = noise^2
  EXPECT_EQ(r.rank, 3);
}

TEST(VbmfTest, TransposedInputGivesSameRank) {
  Rng rng(15);
  Tensor y = planted_low_rank(20, 45, 4, 4.0F, 0.15F, rng);
  VbmfResult a = evbmf(y);
  VbmfResult b = evbmf(y.transpose2d());
  EXPECT_EQ(a.rank, b.rank);
}

TEST(VbmfTest, ShrunkValuesBelowRawSingulars) {
  Rng rng(16);
  Tensor y = planted_low_rank(30, 40, 3, 4.0F, 0.2F, rng);
  auto s = singular_values(y);
  VbmfResult r = evbmf(y);
  ASSERT_GE(r.rank, 1);
  for (int64_t i = 0; i < r.rank; ++i) {
    EXPECT_LT(r.shrunk[static_cast<size_t>(i)], s[static_cast<size_t>(i)]);
    EXPECT_GT(r.shrunk[static_cast<size_t>(i)], 0.0);
  }
}

TEST(VbmfTest, EstimateTtRankWithinBounds) {
  Rng rng(17);
  // A conv weight synthesized from rank-3 cores plus observation noise
  // (trained weights are low-rank structure + noise): the estimate should be
  // close to the planted rank and never exceed min(I, O).
  TTCores gen = random_cores(16, 24, 3, 3, rng);
  Tensor dense = merge_stt(gen);
  dense.mul_scalar_(1.0F / static_cast<float>(dense.norm()));
  Tensor noise = Tensor::randn(dense.shape(), rng);
  dense.axpy_(0.001F, noise);
  const int64_t r = estimate_tt_rank(dense);
  EXPECT_GE(r, 1);
  EXPECT_LE(r, 6);
}

TEST(VbmfTest, EstimateTtRankFullRandomIsModerate) {
  Rng rng(18);
  Tensor dense = Tensor::randn({32, 32, 3, 3}, rng);
  const int64_t r = estimate_tt_rank(dense);
  EXPECT_GE(r, 1);
  EXPECT_LE(r, 32);
}

}  // namespace
}  // namespace ttsnn
