// Unit and gradient-check tests for the dense NN layers: Conv2d, Linear,
// BatchNorm (all three modes), pooling, and the container modules.

#include <gtest/gtest.h>

#include "gradcheck.h"
#include "nn/batchnorm.h"
#include "nn/containers.h"
#include "nn/conv2d.h"
#include "nn/lif.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "tensor/ops.h"

namespace ttsnn {
namespace {

TEST(Conv2dTest, IdentityKernelPreservesInput) {
  Rng rng(1);
  Conv2d::Options o{.in_channels = 1, .out_channels = 1, .kernel_h = 1,
                    .kernel_w = 1};
  Tensor w = Tensor::ones({1, 1, 1, 1});
  Conv2d conv(o, w);
  Tensor x = Tensor::randn({2, 1, 1, 4, 4}, rng);
  Tensor y = conv.forward(x);
  EXPECT_EQ(y.shape(), x.shape());
  EXPECT_LT(max_abs_diff(x, y), 1e-7);
}

TEST(Conv2dTest, HandComputed3x3) {
  // Single 3x3 all-ones kernel, same padding: output = local sum.
  Conv2d::Options o{.in_channels = 1, .out_channels = 1};
  Conv2d conv(o, Tensor::ones({1, 1, 3, 3}));
  Tensor x = Tensor::zeros({1, 1, 1, 3, 3});
  x.at({0, 0, 0, 1, 1}) = 1.0F;  // impulse at center
  Tensor y = conv.forward(x);
  // Every position sees the impulse: all outputs are 1.
  for (int64_t i = 0; i < y.numel(); ++i) EXPECT_FLOAT_EQ(y[i], 1.0F);
}

TEST(Conv2dTest, StrideHalvesResolution) {
  Rng rng(2);
  Conv2d::Options o{.in_channels = 3, .out_channels = 8, .stride = 2};
  Conv2d conv(o, rng);
  Tensor x = Tensor::randn({1, 2, 3, 8, 8}, rng);
  Tensor y = conv.forward(x);
  EXPECT_EQ(y.shape(), (Shape{1, 2, 8, 4, 4}));
}

TEST(Conv2dTest, AsymmetricKernelShapes) {
  Rng rng(3);
  // The TT sub-convolution shapes: (3,1) and (1,3) with same padding.
  Conv2d::Options o31{.in_channels = 4, .out_channels = 4, .kernel_h = 3,
                      .kernel_w = 1};
  Conv2d::Options o13{.in_channels = 4, .out_channels = 4, .kernel_h = 1,
                      .kernel_w = 3};
  Conv2d c31(o31, rng), c13(o13, rng);
  Tensor x = Tensor::randn({1, 1, 4, 6, 6}, rng);
  EXPECT_EQ(c31.forward(x).shape(), x.shape());
  EXPECT_EQ(c13.forward(x).shape(), x.shape());
}

TEST(Conv2dTest, GradCheckInputAndWeights) {
  Rng rng(4);
  Conv2d::Options o{.in_channels = 2, .out_channels = 3, .bias = true};
  Conv2d conv(o, rng);
  Tensor x = Tensor::randn({1, 2, 2, 5, 5}, rng);
  Tensor w = Tensor::randn({1, 2, 3, 5, 5}, rng);
  check_input_grad(conv, x, w);
  check_param_grads(conv, x, w);
}

TEST(Conv2dTest, GradCheckStridedAsymmetric) {
  Rng rng(5);
  Conv2d::Options o{.in_channels = 2, .out_channels = 2, .kernel_h = 3,
                    .kernel_w = 1, .stride = 2};
  Conv2d conv(o, rng);
  Tensor x = Tensor::randn({1, 1, 2, 7, 7}, rng);
  Tensor w = Tensor::randn({1, 1, 2, 4, 4}, rng);
  check_input_grad(conv, x, w);
  check_param_grads(conv, x, w);
}

TEST(Conv2dTest, DescribeComputesMacsAndParams) {
  Rng rng(6);
  Conv2d::Options o{.in_channels = 16, .out_channels = 32, .stride = 2};
  Conv2d conv(o, rng);
  ShapeState s{.c = 16, .h = 8, .w = 8};
  std::vector<LayerDesc> descs;
  conv.describe(s, descs);
  ASSERT_EQ(descs.size(), 1u);
  EXPECT_EQ(descs[0].params, 32 * 16 * 9);
  EXPECT_EQ(descs[0].out_h, 4);
  EXPECT_EQ(descs[0].macs, 32 * 4 * 4 * 16 * 9);
  EXPECT_EQ(s.c, 32);
  EXPECT_EQ(s.h, 4);
}

TEST(LinearTest, ForwardMatchesHandComputed) {
  Rng rng(7);
  Linear lin(2, 2, rng);
  lin.weight().value = Tensor({2, 2}, {1, 2, 3, 4});
  lin.bias().value = Tensor({2}, {10, 20});
  Tensor x({1, 1, 2}, {1, 1});
  Tensor y = lin.forward(x);
  EXPECT_FLOAT_EQ(y[0], 13.0F);  // 1*1 + 2*1 + 10
  EXPECT_FLOAT_EQ(y[1], 27.0F);  // 3*1 + 4*1 + 20
}

TEST(LinearTest, GradCheck) {
  Rng rng(8);
  Linear lin(6, 4, rng);
  Tensor x = Tensor::randn({2, 3, 6}, rng);
  Tensor w = Tensor::randn({2, 3, 4}, rng);
  check_input_grad(lin, x, w);
  check_param_grads(lin, x, w);
}

TEST(BatchNormTest, NormalizesPerStep) {
  Rng rng(9);
  BatchNorm bn({.channels = 3});
  Tensor x = Tensor::randn({2, 4, 3, 5, 5}, rng);
  x.mul_scalar_(3.0F).add_scalar_(1.5F);
  Tensor y = bn.forward(x);
  // Each (t, c) slice should be ~N(0,1) over (N, H, W).
  for (int64_t t = 0; t < 2; ++t) {
    for (int64_t c = 0; c < 3; ++c) {
      double s1 = 0.0, s2 = 0.0;
      for (int64_t n = 0; n < 4; ++n) {
        for (int64_t h = 0; h < 5; ++h) {
          for (int64_t w = 0; w < 5; ++w) {
            const double v = y.at({t, n, c, h, w});
            s1 += v;
            s2 += v * v;
          }
        }
      }
      const double count = 4 * 5 * 5;
      EXPECT_NEAR(s1 / count, 0.0, 1e-4);
      EXPECT_NEAR(s2 / count, 1.0, 1e-2);
    }
  }
}

TEST(BatchNormTest, TdBnScalesByAlphaVth) {
  Rng rng(10);
  const float alpha_vth = 0.5F;
  BatchNorm bn({.channels = 2, .mode = BatchNorm::Mode::kTdBn,
                .alpha_vth = alpha_vth});
  Tensor x = Tensor::randn({3, 4, 2, 4, 4}, rng);
  Tensor y = bn.forward(x);
  // Variance over ALL timesteps jointly should be alpha_vth^2.
  for (int64_t c = 0; c < 2; ++c) {
    double s1 = 0.0, s2 = 0.0;
    int64_t count = 0;
    for (int64_t t = 0; t < 3; ++t) {
      for (int64_t n = 0; n < 4; ++n) {
        for (int64_t h = 0; h < 4; ++h) {
          for (int64_t w = 0; w < 4; ++w) {
            const double v = y.at({t, n, c, h, w});
            s1 += v;
            s2 += v * v;
            ++count;
          }
        }
      }
    }
    const double mean = s1 / count;
    const double var = s2 / count - mean * mean;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, alpha_vth * alpha_vth, 2e-2);
  }
}

TEST(BatchNormTest, TebnAppliesPerStepScale) {
  Rng rng(11);
  BatchNorm bn({.channels = 2, .mode = BatchNorm::Mode::kTebn, .timesteps = 2});
  bn.step_scale().value[0] = 2.0F;
  bn.step_scale().value[1] = 0.5F;
  Tensor x = Tensor::randn({2, 8, 2, 3, 3}, rng);
  Tensor y = bn.forward(x);
  // Ratio of per-step standard deviations should be ~4 (2.0 / 0.5).
  auto step_std = [&](int64_t t) {
    double s2 = 0.0;
    int64_t cnt = 0;
    for (int64_t n = 0; n < 8; ++n) {
      for (int64_t c = 0; c < 2; ++c) {
        for (int64_t h = 0; h < 3; ++h) {
          for (int64_t w = 0; w < 3; ++w) {
            const double v = y.at({t, n, c, h, w});
            s2 += v * v;
            ++cnt;
          }
        }
      }
    }
    return std::sqrt(s2 / cnt);
  };
  EXPECT_NEAR(step_std(0) / step_std(1), 4.0, 0.8);
}

class BatchNormGradTest : public ::testing::TestWithParam<BatchNorm::Mode> {};

TEST_P(BatchNormGradTest, GradCheck) {
  Rng rng(12);
  BatchNorm bn({.channels = 2, .mode = GetParam(), .alpha_vth = 0.7F,
                .timesteps = 2});
  Tensor x = Tensor::randn({2, 3, 2, 3, 3}, rng);
  Tensor w = Tensor::randn({2, 3, 2, 3, 3}, rng);
  GradCheckOptions o;
  o.rel_tol = 5e-2;  // batch statistics amplify FD noise
  o.abs_tol = 5e-3;
  check_input_grad(bn, x, w, o);
  check_param_grads(bn, x, w, o);
}

INSTANTIATE_TEST_SUITE_P(Modes, BatchNormGradTest,
                         ::testing::Values(BatchNorm::Mode::kPerStep,
                                           BatchNorm::Mode::kTdBn,
                                           BatchNorm::Mode::kTebn));

TEST(BatchNormTest, EvalModeUsesRunningStats) {
  Rng rng(13);
  BatchNorm bn({.channels = 2, .momentum = 1.0F});
  Tensor x = Tensor::randn({1, 16, 2, 4, 4}, rng);
  bn.forward(x);  // momentum 1.0: running stats == batch stats
  bn.set_training(false);
  Tensor y = bn.forward(x);
  // With running == batch stats, eval output matches train output closely.
  bn.set_training(true);
  Tensor y_train = bn.forward(x);
  EXPECT_LT(max_abs_diff(y, y_train), 1e-4);
}

TEST(AvgPoolTest, ForwardAverages) {
  AvgPool2d pool(2);
  Tensor x({1, 1, 1, 2, 2}, {1, 2, 3, 4});
  Tensor y = pool.forward(x);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(y[0], 2.5F);
}

TEST(AvgPoolTest, GradCheck) {
  Rng rng(14);
  AvgPool2d pool(2);
  Tensor x = Tensor::randn({1, 2, 3, 4, 4}, rng);
  Tensor w = Tensor::randn({1, 2, 3, 2, 2}, rng);
  check_input_grad(pool, x, w);
}

TEST(AvgPoolTest, RejectsNonDivisible) {
  AvgPool2d pool(2);
  Tensor x = Tensor::zeros({1, 1, 1, 3, 3});
  EXPECT_THROW(pool.forward(x), Error);
}

TEST(GlobalAvgPoolTest, ShapeAndGradCheck) {
  Rng rng(15);
  GlobalAvgPool pool;
  Tensor x = Tensor::randn({2, 2, 3, 4, 4}, rng);
  Tensor y = pool.forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 2, 3}));
  Tensor w = Tensor::randn({2, 2, 3}, rng);
  check_input_grad(pool, x, w);
}

TEST(SequentialTest, ChainsForwardAndBackward) {
  Rng rng(16);
  auto seq = std::make_unique<Sequential>();
  seq->emplace<Conv2d>(Conv2d::Options{.in_channels = 2, .out_channels = 4},
                       rng);
  seq->emplace<AvgPool2d>(2);
  Tensor x = Tensor::randn({1, 2, 2, 4, 4}, rng);
  Tensor y = seq->forward(x);
  EXPECT_EQ(y.shape(), (Shape{1, 2, 4, 2, 2}));
  Tensor w = Tensor::randn({1, 2, 4, 2, 2}, rng);
  check_input_grad(*seq, x, w);
  check_param_grads(*seq, x, w);
}

TEST(SequentialTest, CollectsParametersRecursively) {
  Rng rng(17);
  Sequential seq;
  seq.emplace<Conv2d>(Conv2d::Options{.in_channels = 2, .out_channels = 4}, rng);
  seq.emplace<BatchNorm>(BatchNorm::Options{.channels = 4});
  auto params = seq.parameters();
  EXPECT_EQ(params.size(), 3u);  // conv weight + bn gamma + bn beta
}

TEST(ResidualTest, IdentityShortcutAddsInput) {
  Rng rng(18);
  auto body = std::make_unique<Sequential>();
  body->emplace<Conv2d>(Conv2d::Options{.in_channels = 2, .out_channels = 2},
                        rng);
  Residual res(std::move(body), nullptr);
  Tensor x = Tensor::randn({1, 1, 2, 4, 4}, rng);
  Tensor y = res.forward(x);
  EXPECT_EQ(y.shape(), x.shape());
  Tensor w = Tensor::randn({1, 1, 2, 4, 4}, rng);
  check_input_grad(res, x, w);
}

TEST(ResidualTest, ProjectionShortcutGradCheck) {
  Rng rng(19);
  auto body = std::make_unique<Sequential>();
  body->emplace<Conv2d>(
      Conv2d::Options{.in_channels = 2, .out_channels = 4, .stride = 2}, rng);
  auto shortcut = std::make_unique<Conv2d>(
      Conv2d::Options{.in_channels = 2, .out_channels = 4, .kernel_h = 1,
                      .kernel_w = 1, .stride = 2},
      rng);
  Residual res(std::move(body), std::move(shortcut));
  Tensor x = Tensor::randn({1, 1, 2, 4, 4}, rng);
  Tensor w = Tensor::randn({1, 1, 4, 2, 2}, rng);
  check_input_grad(res, x, w);
  check_param_grads(res, x, w);
}

TEST(ResidualTest, MismatchedBranchesThrow) {
  Rng rng(20);
  auto body = std::make_unique<Conv2d>(
      Conv2d::Options{.in_channels = 2, .out_channels = 4}, rng);
  Residual res(std::move(body), nullptr);
  Tensor x = Tensor::randn({1, 1, 2, 4, 4}, rng);
  EXPECT_THROW(res.forward(x), Error);
}

TEST(FlattenTest, RoundTrip) {
  Rng rng(21);
  Flatten fl;
  Tensor x = Tensor::randn({2, 3, 4, 2, 2}, rng);
  Tensor y = fl.forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 3, 16}));
  Tensor g = fl.backward(y);
  EXPECT_EQ(g.shape(), x.shape());
}

TEST(ModuleTest, VisitModuleSlotsReachesAllChildren) {
  Rng rng(22);
  auto body = std::make_unique<Sequential>();
  body->emplace<Conv2d>(Conv2d::Options{.in_channels = 2, .out_channels = 2},
                        rng);
  body->emplace<BatchNorm>(BatchNorm::Options{.channels = 2});
  Sequential root;
  root.add(std::make_unique<Residual>(std::move(body), nullptr));
  int count = 0;
  visit_module_slots(root, [&](ModulePtr&) { ++count; });
  EXPECT_EQ(count, 4);  // residual + body seq + conv + bn
}

// Eval-mode forwards must not retain backward caches: serving pays no BPTT
// memory traffic, and backward after an eval forward fails loudly instead of
// silently reusing stale activations. Numbers must not change either way.
TEST(EvalCacheTest, Conv2dSkipsCaching) {
  Rng rng(40);
  Conv2d conv({.in_channels = 3, .out_channels = 4}, rng);
  Tensor x = Tensor::randn({2, 2, 3, 5, 5}, rng);
  Tensor y_train = conv.forward(x);
  conv.set_training(false);
  Tensor y_eval = conv.forward(x);
  EXPECT_EQ(max_abs_diff(y_train, y_eval), 0.0);
  EXPECT_THROW(conv.backward(y_eval), Error);
}

TEST(EvalCacheTest, BatchNormSkipsCaching) {
  Rng rng(41);
  for (BatchNorm::Mode mode :
       {BatchNorm::Mode::kPerStep, BatchNorm::Mode::kTdBn,
        BatchNorm::Mode::kTebn}) {
    BatchNorm bn({.channels = 3, .mode = mode, .timesteps = 2});
    Tensor x = Tensor::randn({2, 2, 3, 4, 4}, rng);
    bn.forward(x);  // training: populates caches and running stats
    bn.set_training(false);
    Tensor y = bn.forward(x);
    EXPECT_EQ(y.shape(), x.shape());
    EXPECT_THROW(bn.backward(y), Error);
  }
}

TEST(EvalCacheTest, LifSkipsCachingAndStillReportsDensity) {
  Rng rng(42);
  LIFNeuron lif;
  Tensor x = Tensor::randn({3, 2, 4, 4, 4}, rng);
  Tensor y_train = lif.forward(x);
  const double train_density = lif.last_spike_density();
  lif.set_training(false);
  Tensor y_eval = lif.forward(x);
  EXPECT_EQ(max_abs_diff(y_train, y_eval), 0.0);
  // profile_spikes() runs in eval mode and reads the density afterwards.
  EXPECT_EQ(lif.last_spike_density(), train_density);
  EXPECT_THROW(lif.backward(y_eval), Error);
}

TEST(EvalCacheTest, LinearSkipsCaching) {
  Rng rng(43);
  Linear lin(6, 3, rng);
  Tensor x = Tensor::randn({2, 2, 6}, rng);
  lin.forward(x);
  lin.set_training(false);
  Tensor y = lin.forward(x);
  EXPECT_THROW(lin.backward(y), Error);
}

}  // namespace
}  // namespace ttsnn
