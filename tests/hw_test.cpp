// Accelerator simulator tests: workload extraction structure, energy
// accounting invariants, and the Fig. 4 mechanism signs — PTT pays a DRAM
// round-trip penalty on the layer-sequential baseline but wins on the
// proposed multi-cluster design; HTT always wins on the multi-cluster.

#include <gtest/gtest.h>

#include "core/factorize.h"
#include "core/models.h"
#include "hw/multi_cluster.h"
#include "hw/sata_baseline.h"
#include "hw/workload.h"

namespace ttsnn {
namespace {

HwWorkload make_workload(TTMode mode, bool factorized, bool parallel,
                         int64_t width = 16,
                         std::vector<bool> schedule = {true, true, false,
                                                       false}) {
  Rng rng(1);
  ModelConfig cfg;
  cfg.base_width = width;
  cfg.num_classes = 10;
  cfg.timesteps = 4;
  ModulePtr net = make_ms_resnet18(cfg, rng);
  if (factorized) {
    FactorizeOptions f;
    f.mode = mode;
    f.use_vbmf = false;
    f.rank_fraction = 0.3;
    f.init_from_dense = false;
    if (mode == TTMode::kHTT) f.htt_schedule = std::move(schedule);
    factorize_network(*net, f, rng);
  }
  ModelStats stats = analyze_model(*net, 3, 16, 16);
  WorkloadOptions w;
  w.timesteps = 4;
  w.parallel_strips = parallel;
  return build_workload("test", stats, w);
}

TEST(WorkloadTest, DenseModelStructure) {
  HwWorkload wl = make_workload(TTMode::kSTT, false, false);
  // ResNet18: 20 convs + 1 linear = 21 blocks, all dense.
  EXPECT_EQ(wl.blocks.size(), 21u);
  for (const HwBlock& b : wl.blocks) {
    EXPECT_EQ(b.kind, HwBlock::Kind::kDense);
    EXPECT_EQ(b.parts.size(), 1u);
  }
  // Classifier produces analog logits, no LIF.
  EXPECT_FALSE(wl.blocks.back().followed_by_lif);
  EXPECT_TRUE(wl.blocks.front().followed_by_lif);
}

TEST(WorkloadTest, TtBlocksHaveFourParts) {
  HwWorkload wl = make_workload(TTMode::kPTT, true, true);
  int64_t tt_blocks = 0;
  for (const HwBlock& b : wl.blocks) {
    if (b.kind != HwBlock::Kind::kTT) continue;
    ++tt_blocks;
    ASSERT_EQ(b.parts.size(), 4u);
    // Only the block boundary crosses the chip.
    EXPECT_TRUE(b.parts[0].boundary_input);
    EXPECT_FALSE(b.parts[0].boundary_output);
    EXPECT_FALSE(b.parts[1].boundary_input);
    EXPECT_TRUE(b.parts[3].boundary_output);
    // w1 consumes spikes; strips and w4 consume analog intermediates.
    EXPECT_TRUE(b.parts[0].spike_input);
    EXPECT_FALSE(b.parts[1].spike_input);
    EXPECT_FALSE(b.parts[3].spike_input);
  }
  EXPECT_EQ(tt_blocks, 16);
}

TEST(WorkloadTest, SpikeStreamsArePacked) {
  HwWorkload wl = make_workload(TTMode::kSTT, false, false);
  // A block conv consumes 1-bit spikes and emits 1-bit spikes (post LIF).
  const HwBlock& block = wl.blocks[1];
  EXPECT_DOUBLE_EQ(block.parts[0].in_bits, 1.0);
  EXPECT_DOUBLE_EQ(block.parts[0].out_bits, 1.0);
  // The stem consumes 8-bit analog pixels.
  EXPECT_DOUBLE_EQ(wl.blocks[0].parts[0].in_bits, 8.0);
}

TEST(WorkloadTest, HttUtilizationPropagates) {
  HwWorkload wl = make_workload(TTMode::kHTT, true, true);
  for (const HwBlock& b : wl.blocks) {
    if (b.kind == HwBlock::Kind::kTT) {
      EXPECT_DOUBLE_EQ(b.strip_utilization, 0.5);
      EXPECT_DOUBLE_EQ(b.parts[1].utilization, 0.5);
      EXPECT_DOUBLE_EQ(b.parts[0].utilization, 1.0);
    }
  }
}

TEST(EnergyReportTest, TotalIsSumOfComponents) {
  HwWorkload wl = make_workload(TTMode::kPTT, true, true);
  EnergyReport r = simulate_sata(wl);
  EXPECT_NEAR(r.total_pj(),
              r.compute_pj + r.lif_pj + r.sram_pj + r.dram_pj + r.leakage_pj,
              1e-6 * r.total_pj());
  EXPECT_GT(r.cycles, 0);
}

TEST(SataTest, DeterministicAcrossRuns) {
  HwWorkload wl = make_workload(TTMode::kSTT, true, false);
  EnergyReport a = simulate_sata(wl);
  EnergyReport b = simulate_sata(wl);
  EXPECT_DOUBLE_EQ(a.total_pj(), b.total_pj());
  EXPECT_EQ(a.cycles, b.cycles);
}

TEST(SataTest, EnergyMonotonicInModelWidth) {
  EnergyReport small = simulate_sata(make_workload(TTMode::kSTT, false, false, 8));
  EnergyReport big = simulate_sata(make_workload(TTMode::kSTT, false, false, 24));
  EXPECT_GT(big.total_pj(), small.total_pj());
  EXPECT_GT(big.cycles, small.cycles);
}

TEST(SataTest, DecompositionCutsTrainingEnergy) {
  // Fig. 4(a): STT substantially below the dense baseline.
  EnergyReport base = simulate_sata(make_workload(TTMode::kSTT, false, false));
  EnergyReport stt = simulate_sata(make_workload(TTMode::kSTT, true, false));
  EXPECT_LT(stt.total_pj(), 0.7 * base.total_pj());
}

TEST(SataTest, PttRoundTripPenalty) {
  // Fig. 4(a): on the layer-sequential baseline PTT costs MORE than STT
  // because one strip's output bounces through DRAM before the merge.
  EnergyReport stt = simulate_sata(make_workload(TTMode::kSTT, true, false));
  EnergyReport ptt = simulate_sata(make_workload(TTMode::kPTT, true, true));
  EXPECT_GT(ptt.total_pj(), stt.total_pj());
  EXPECT_GT(ptt.dram_pj, stt.dram_pj);
}

TEST(SataTest, SparsityReducesEnergy) {
  Rng rng(1);
  ModelConfig cfg;
  cfg.base_width = 16;
  cfg.timesteps = 4;
  ModulePtr net = make_ms_resnet18(cfg, rng);
  ModelStats stats = analyze_model(*net, 3, 16, 16);
  WorkloadOptions dense_opts;
  dense_opts.spike_density = 0.5;
  WorkloadOptions sparse_opts;
  sparse_opts.spike_density = 0.1;
  EnergyReport d = simulate_sata(build_workload("d", stats, dense_opts));
  EnergyReport s = simulate_sata(build_workload("s", stats, sparse_opts));
  EXPECT_LT(s.compute_pj, d.compute_pj);
  EXPECT_LT(s.total_pj(), d.total_pj());
}

TEST(MultiClusterTest, PttBeatsSttOnProposedDesign) {
  // Fig. 4(b): the 4-cluster pipelined mapping makes PTT cheaper than STT.
  EnergyReport stt =
      simulate_multi_cluster(make_workload(TTMode::kSTT, true, false));
  EnergyReport ptt =
      simulate_multi_cluster(make_workload(TTMode::kPTT, true, true));
  EXPECT_LT(ptt.total_pj(), stt.total_pj());
  // The win comes from parallel-cluster latency (leakage) + fewer buffer hops.
  EXPECT_LT(ptt.leakage_pj, stt.leakage_pj);
  EXPECT_LT(ptt.cycles, stt.cycles);
}

TEST(MultiClusterTest, HttBeatsPttOnProposedDesign) {
  EnergyReport ptt =
      simulate_multi_cluster(make_workload(TTMode::kPTT, true, true));
  EnergyReport htt =
      simulate_multi_cluster(make_workload(TTMode::kHTT, true, true));
  EXPECT_LT(htt.total_pj(), ptt.total_pj());
}

TEST(MultiClusterTest, ProposedBeatsBaselineForPtt) {
  HwWorkload wl = make_workload(TTMode::kPTT, true, true);
  EnergyReport old_hw = simulate_sata(wl);
  EnergyReport new_hw = simulate_multi_cluster(wl);
  EXPECT_LT(new_hw.total_pj(), old_hw.total_pj());
  // Specifically the round-trip DRAM traffic disappears.
  EXPECT_LT(new_hw.dram_pj, old_hw.dram_pj);
}

TEST(MultiClusterTest, AllHalfScheduleCheaperThanAllFull) {
  EnergyReport all_full = simulate_multi_cluster(make_workload(
      TTMode::kHTT, true, true, 16, {true, true, true, true}));
  EnergyReport all_half = simulate_multi_cluster(make_workload(
      TTMode::kHTT, true, true, 16, {false, false, false, false}));
  EXPECT_LT(all_half.total_pj(), all_full.total_pj());
}

TEST(MultiClusterTest, ReportTimingConsistent) {
  HwWorkload wl = make_workload(TTMode::kPTT, true, true);
  MultiClusterConfig cfg;
  EnergyReport r = simulate_multi_cluster(wl, cfg);
  EXPECT_GT(r.milliseconds(cfg.energy.clock_ghz), 0.0);
  EXPECT_NEAR(r.leakage_pj,
              static_cast<double>(r.cycles) * cfg.energy.leakage_per_cycle,
              1e-6 * r.leakage_pj);
}

}  // namespace
}  // namespace ttsnn
