// End-to-end training tests: the integration layer of the reproduction.
// A scaled MS-ResNet must actually learn the synthetic datasets, in dense
// form AND after TT factorization in each mode; training time must order as
// the paper reports (baseline slowest, HTT fastest).

#include <gtest/gtest.h>

#include "core/factorize.h"
#include "core/models.h"
#include "data/synthetic_event.h"
#include "data/synthetic_image.h"
#include "snn/trainer.h"

namespace ttsnn {
namespace {

SyntheticImageDataset small_images(uint64_t seed, int64_t per_class = 12) {
  return SyntheticImageDataset({.num_classes = 4,
                                .samples_per_class = per_class,
                                .channels = 3,
                                .size = 12,
                                .seed = seed});
}

ModelConfig small_model_config() {
  ModelConfig cfg;
  cfg.in_channels = 3;
  cfg.num_classes = 4;
  cfg.base_width = 8;
  cfg.timesteps = 2;
  return cfg;
}

TEST(TrainerTest, LossDecreasesOnImages) {
  Rng rng(1);
  ModelConfig cfg = small_model_config();
  ModulePtr net = make_ms_resnet18(cfg, rng);
  SyntheticImageDataset train = small_images(100);
  SyntheticImageDataset test = small_images(200, 4);
  Trainer trainer(*net, train, test,
                  {.epochs = 4, .batch_size = 16, .timesteps = 2, .lr = 0.05F,
                   .seed = 3});
  EpochStats first = trainer.run_epoch(0);
  EpochStats last;
  for (int64_t e = 1; e < 4; ++e) last = trainer.run_epoch(e);
  EXPECT_LT(last.loss, first.loss);
}

TEST(TrainerTest, LearnsAboveChanceDense) {
  Rng rng(2);
  ModelConfig cfg = small_model_config();
  ModulePtr net = make_ms_resnet18(cfg, rng);
  SyntheticImageDataset train = small_images(100);
  SyntheticImageDataset test = small_images(200, 6);
  Trainer trainer(*net, train, test,
                  {.epochs = 6, .batch_size = 16, .timesteps = 2, .lr = 0.05F,
                   .seed = 4});
  FitResult result = trainer.fit();
  EXPECT_GT(result.test_accuracy, 0.4);  // chance = 0.25
  EXPECT_GT(result.batch_time_s, 0.0);
}

class TrainerModeTest : public ::testing::TestWithParam<TTMode> {};

TEST_P(TrainerModeTest, LearnsAboveChanceFactorized) {
  Rng rng(3);
  ModelConfig cfg = small_model_config();
  ModulePtr net = make_ms_resnet18(cfg, rng);
  FactorizeOptions fopts;
  fopts.mode = GetParam();
  fopts.use_vbmf = false;
  fopts.rank_fraction = 0.5;
  // HTT uses the paper's schedule: full sub-convolutions in the early half
  // of the timesteps, half sub-convolutions in the late half (Sec. V-A).
  const bool htt = fopts.mode == TTMode::kHTT;
  const int64_t timesteps = htt ? 4 : 2;
  if (htt) fopts.htt_schedule = {true, true, false, false};
  factorize_network(*net, fopts, rng);

  SyntheticImageDataset train = small_images(100);
  SyntheticImageDataset test = small_images(200, 6);
  // HTT does less work per step and needs a hotter LR at this tiny scale;
  // the deterministic seed keeps the outcome stable.
  Trainer trainer(*net, train, test,
                  {.epochs = 6, .batch_size = 16, .timesteps = timesteps,
                   .lr = htt ? 0.1F : 0.05F, .seed = 5});
  FitResult result = trainer.fit();
  EXPECT_GT(result.test_accuracy, 0.4) << tt_mode_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Modes, TrainerModeTest,
                         ::testing::Values(TTMode::kSTT, TTMode::kPTT,
                                           TTMode::kHTT));

TEST(TrainerTest, MergedModelKeepsAccuracy) {
  // Train factorized (PTT), merge (Algorithm 1 lines 20-22), and verify the
  // merged dense model scores identically on the test set.
  Rng rng(4);
  ModelConfig cfg = small_model_config();
  ModulePtr net = make_ms_resnet18(cfg, rng);
  FactorizeOptions fopts;
  fopts.use_vbmf = false;
  fopts.rank_fraction = 0.5;
  factorize_network(*net, fopts, rng);

  SyntheticImageDataset train = small_images(100, 8);
  SyntheticImageDataset test = small_images(200, 6);
  Trainer trainer(*net, train, test,
                  {.epochs = 3, .batch_size = 16, .timesteps = 2, .lr = 0.05F,
                   .seed = 6});
  for (int64_t e = 0; e < 3; ++e) trainer.run_epoch(e);
  const double acc_tt = trainer.evaluate();

  merge_network(*net);
  Trainer merged_eval(*net, train, test,
                      {.epochs = 1, .batch_size = 16, .timesteps = 2,
                       .seed = 6});
  const double acc_merged = merged_eval.evaluate();
  EXPECT_NEAR(acc_tt, acc_merged, 1e-9);
}

TEST(TrainerTest, BatchTimeOrderingMatchesPaper) {
  // Table II trend: baseline slower than STT; HTT fastest of the TT modes.
  Rng rng(5);
  ModelConfig cfg = small_model_config();
  cfg.base_width = 16;

  auto time_mode = [&](const char* which) {
    ModulePtr net = make_ms_resnet18(cfg, rng);
    if (std::string(which) != "dense") {
      FactorizeOptions fopts;
      fopts.use_vbmf = false;
      fopts.rank_fraction = 0.25;
      fopts.mode = std::string(which) == "stt" ? TTMode::kSTT
                   : std::string(which) == "ptt" ? TTMode::kPTT
                                                 : TTMode::kHTT;
      if (fopts.mode == TTMode::kHTT) fopts.htt_schedule = {true, false};
      factorize_network(*net, fopts, rng);
    }
    SyntheticImageDataset train = small_images(100, 8);
    Trainer trainer(*net, train, train,
                    {.epochs = 1, .batch_size = 8, .timesteps = 2, .seed = 7});
    return trainer.time_batch(3);
  };

  const double t_dense = time_mode("dense");
  const double t_stt = time_mode("stt");
  const double t_htt = time_mode("htt");
  EXPECT_LT(t_stt, t_dense);
  EXPECT_LT(t_htt, t_stt * 1.15);  // HTT does strictly less work than STT
}

TEST(TrainerTest, LearnsEventDataset) {
  Rng rng(6);
  ModelConfig cfg = small_model_config();
  cfg.in_channels = 2;
  ModulePtr net = make_ms_resnet18(cfg, rng);
  SyntheticEventDataset train({.num_classes = 4, .samples_per_class = 12,
                               .size = 12, .seed = 100});
  SyntheticEventDataset test({.num_classes = 4, .samples_per_class = 6,
                              .size = 12, .seed = 200});
  Trainer trainer(*net, train, test,
                  {.epochs = 8, .batch_size = 16, .timesteps = 4, .lr = 0.05F,
                   .seed = 9});
  FitResult result = trainer.fit();
  EXPECT_GT(result.test_accuracy, 0.4);
}

TEST(TrainerTest, EvaluateHandlesRemainderBatch) {
  // Test set size not divisible by batch size: every sample still counted.
  Rng rng(11);
  ModelConfig cfg = small_model_config();
  ModulePtr net = make_ms_resnet18(cfg, rng);
  SyntheticImageDataset train = small_images(100, 4);
  SyntheticImageDataset test = small_images(200, 3);  // 12 samples, batch 16
  Trainer trainer(*net, train, test,
                  {.epochs = 1, .batch_size = 16, .timesteps = 2, .seed = 12});
  const double acc = trainer.evaluate();
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

TEST(TrainerTest, DatasetSmallerThanBatchThrows) {
  Rng rng(12);
  ModelConfig cfg = small_model_config();
  ModulePtr net = make_ms_resnet18(cfg, rng);
  SyntheticImageDataset tiny = small_images(100, 2);  // 8 samples
  Trainer trainer(*net, tiny, tiny,
                  {.epochs = 1, .batch_size = 64, .timesteps = 2, .seed = 13});
  EXPECT_THROW(trainer.run_epoch(0), Error);
}

TEST(TrainerTest, ClearCacheReleasesActivations) {
  Rng rng(13);
  ModelConfig cfg = small_model_config();
  ModulePtr net = make_ms_resnet18(cfg, rng);
  SyntheticImageDataset data = small_images(100, 4);
  Batch batch = data.get_batch({0, 1}, 2);
  net->forward(batch.input);
  net->clear_cache();
  // Backward after clear_cache must fail loudly, not read stale tensors.
  Tensor g = Tensor::zeros({2, 2, 4});
  EXPECT_THROW(net->backward(g), Error);
}

TEST(TrainerTest, TetLossTrains) {
  Rng rng(7);
  ModelConfig cfg = small_model_config();
  ModulePtr net = make_ms_resnet18(cfg, rng);
  SyntheticImageDataset train = small_images(100, 8);
  Trainer trainer(*net, train, train,
                  {.epochs = 3, .batch_size = 16, .timesteps = 2, .lr = 0.05F,
                   .loss = LossKind::kTet, .tet_lambda = 0.05F, .seed = 9});
  EpochStats first = trainer.run_epoch(0);
  EpochStats last = trainer.run_epoch(1);
  last = trainer.run_epoch(2);
  EXPECT_LT(last.loss, first.loss);
}

TEST(TrainerTest, RejectsInvalidTrainConfig) {
  Rng rng(8);
  ModelConfig cfg = small_model_config();
  ModulePtr net = make_ms_resnet18(cfg, rng);
  SyntheticImageDataset data = small_images(100, 4);
  EXPECT_THROW(
      Trainer(*net, data, data, {.epochs = 0, .batch_size = 16, .timesteps = 2}),
      Error);
  EXPECT_THROW(
      Trainer(*net, data, data, {.epochs = 2, .batch_size = 0, .timesteps = 2}),
      Error);
  EXPECT_THROW(
      Trainer(*net, data, data, {.epochs = 2, .batch_size = 16, .timesteps = 0}),
      Error);
  EXPECT_THROW(Trainer(*net, data, data,
                       {.epochs = -3, .batch_size = 16, .timesteps = 2}),
               Error);
}

}  // namespace
}  // namespace ttsnn
