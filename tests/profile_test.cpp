// Spike-profiling + energy-report tests: measured LIF densities feed the HW
// workload (training <-> hardware loop), and report formatting round-trips.

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "core/models.h"
#include "data/synthetic_image.h"
#include "hw/report.h"
#include "hw/sata_baseline.h"
#include "hw/workload.h"
#include "snn/profile.h"

namespace ttsnn {
namespace {

TEST(ProfileTest, DensitiesAreValidFractions) {
  Rng rng(1);
  ModelConfig cfg{.num_classes = 4, .base_width = 8, .timesteps = 3};
  ModulePtr net = make_ms_resnet18(cfg, rng);
  SyntheticImageDataset data({.num_classes = 4, .samples_per_class = 4});
  Batch batch = data.get_batch({0, 1, 2, 3}, 3);
  SpikeProfile profile = profile_spikes(*net, batch.input);
  // MS-ResNet18: 2 LIF per block x 8 blocks + head LIF = 17.
  EXPECT_EQ(profile.lif_densities.size(), 17u);
  for (double d : profile.lif_densities) {
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0);
  }
  EXPECT_GT(profile.mean_density, 0.0);  // an untrained net still spikes
  EXPECT_LT(profile.mean_density, 1.0);
}

TEST(ProfileTest, RestoresTrainingMode) {
  Rng rng(2);
  ModelConfig cfg{.num_classes = 4, .base_width = 8, .timesteps = 2};
  ModulePtr net = make_ms_resnet18(cfg, rng);
  SyntheticImageDataset data({.num_classes = 4, .samples_per_class = 2});
  Batch batch = data.get_batch({0, 1}, 2);
  net->set_training(true);
  profile_spikes(*net, batch.input);
  EXPECT_TRUE(net->is_training());
  net->set_training(false);
  profile_spikes(*net, batch.input);
  EXPECT_FALSE(net->is_training());
}

TEST(ProfileTest, MeasuredDensityDrivesEnergy) {
  // Using the profiled density in the workload changes the simulated energy
  // in the expected direction (denser spikes -> more energy).
  Rng rng(3);
  ModelConfig cfg{.num_classes = 4, .base_width = 8, .timesteps = 3};
  ModulePtr net = make_ms_resnet18(cfg, rng);
  SyntheticImageDataset data({.num_classes = 4, .samples_per_class = 4});
  Batch batch = data.get_batch({0, 1, 2, 3}, 3);
  SpikeProfile profile = profile_spikes(*net, batch.input);

  ModelStats stats = analyze_model(*net, 3, 16, 16);
  WorkloadOptions lo;
  lo.spike_density = profile.mean_density * 0.5;
  WorkloadOptions hi;
  hi.spike_density = std::min(1.0, profile.mean_density * 2.0);
  EnergyReport elo = simulate_sata(build_workload("lo", stats, lo));
  EnergyReport ehi = simulate_sata(build_workload("hi", stats, hi));
  EXPECT_LT(elo.total_pj(), ehi.total_pj());
}

TEST(ReportTest, TableContainsAllRowsAndRatio) {
  EnergyReport a;
  a.compute_pj = 2e6;
  a.dram_pj = 2e6;
  a.cycles = 100;
  EnergyReport b = a;
  b.dram_pj = 1e6;
  std::string table = format_energy_table(
      {{"existing", "STT", a}, {"existing", "PTT", b}}, 0.4);
  EXPECT_NE(table.find("STT"), std::string::npos);
  EXPECT_NE(table.find("PTT"), std::string::npos);
  EXPECT_NE(table.find("1.000"), std::string::npos);  // self-ratio
  EXPECT_NE(table.find("0.750"), std::string::npos);  // 3/4 ratio
}

TEST(ReportTest, CsvRoundTripsNumbers) {
  EnergyReport r;
  r.compute_pj = 1.5;
  r.lif_pj = 2.5;
  r.sram_pj = 3.5;
  r.dram_pj = 4.5;
  r.leakage_pj = 5.5;
  r.cycles = 42;
  std::string csv = energy_csv({{"proposed", "HTT", r}});
  EXPECT_NE(csv.find("proposed,HTT,1.5,2.5,3.5,4.5,5.5,17.5,42"),
            std::string::npos);
}

TEST(ReportTest, WriteCsvCreatesFile) {
  EnergyReport r;
  r.compute_pj = 1.0;
  const std::string path = ::testing::TempDir() + "/energy.csv";
  write_energy_csv({{"d", "m", r}}, path);
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open());
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("design,mode"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ReportTest, EmptyTableThrows) {
  EXPECT_THROW(format_energy_table({}, 0.4), Error);
}

}  // namespace
}  // namespace ttsnn
