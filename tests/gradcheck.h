#pragma once

/// \file gradcheck.h
/// Finite-difference gradient checking for Module implementations.
///
/// Protocol: with a fixed random cotangent w, define the scalar loss
/// L(x) = <w, module(x)>. The analytic input gradient is module.backward(w);
/// parameter gradients accumulate into Parameter::grad. Both are compared
/// against central differences of L.

#include <cmath>

#include <gtest/gtest.h>

#include "nn/module.h"
#include "tensor/tensor.h"

namespace ttsnn {

inline double dot(const Tensor& a, const Tensor& b) {
  EXPECT_TRUE(a.same_shape(b));
  double s = 0.0;
  for (int64_t i = 0; i < a.numel(); ++i) {
    s += static_cast<double>(a[i]) * b[i];
  }
  return s;
}

struct GradCheckOptions {
  float eps = 1e-2F;
  double rel_tol = 3e-2;
  double abs_tol = 2e-3;
  /// Check at most this many coordinates per tensor (stride-sampled).
  int64_t max_coords = 64;
};

/// Checks d<w, f(x)>/dx against backward(w). The module must be freshly
/// constructed (no stale caches); it is re-run for every probe.
inline void check_input_grad(Module& m, const Tensor& x, const Tensor& w,
                             const GradCheckOptions& o = {}) {
  Tensor x0 = x.clone();
  m.forward(x0);
  Tensor gx = m.backward(w);
  ASSERT_TRUE(gx.same_shape(x0));

  const int64_t n = x0.numel();
  const int64_t stride = std::max<int64_t>(1, n / o.max_coords);
  for (int64_t i = 0; i < n; i += stride) {
    Tensor xp = x.clone();
    xp[i] += o.eps;
    const double lp = dot(w, m.forward(xp));
    Tensor xm = x.clone();
    xm[i] -= o.eps;
    const double lm = dot(w, m.forward(xm));
    const double fd = (lp - lm) / (2.0 * o.eps);
    const double an = gx[i];
    const double tol = o.abs_tol + o.rel_tol * std::max(std::fabs(fd), std::fabs(an));
    EXPECT_NEAR(an, fd, tol) << "input coordinate " << i;
  }
}

/// Checks parameter gradients of <w, f(x)> for every parameter of m.
inline void check_param_grads(Module& m, const Tensor& x, const Tensor& w,
                              const GradCheckOptions& o = {}) {
  for (Parameter* p : m.parameters()) p->grad.zero_();
  m.forward(x);
  m.backward(w);

  for (Parameter* p : m.parameters()) {
    const int64_t n = p->value.numel();
    const int64_t stride = std::max<int64_t>(1, n / o.max_coords);
    for (int64_t i = 0; i < n; i += stride) {
      const float saved = p->value[i];
      p->value[i] = saved + o.eps;
      const double lp = dot(w, m.forward(x));
      p->value[i] = saved - o.eps;
      const double lm = dot(w, m.forward(x));
      p->value[i] = saved;
      const double fd = (lp - lm) / (2.0 * o.eps);
      const double an = p->grad[i];
      const double tol =
          o.abs_tol + o.rel_tol * std::max(std::fabs(fd), std::fabs(an));
      EXPECT_NEAR(an, fd, tol) << p->name << " coordinate " << i;
    }
  }
}

}  // namespace ttsnn
