// Arena allocator tests: recycling inside a scope, pass-through outside,
// zero-fill correctness on recycled blocks (the one way recycling could
// corrupt Tensor semantics), byte-limit eviction, scope nesting/trim, and a
// threaded smoke over the shared pool.

#include "tensor/arena.h"

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/thread_pool.h"

namespace ttsnn {
namespace {

TEST(ArenaTest, SizeClassesArePow2AboveMin) {
  EXPECT_EQ(Arena::size_class(1), Arena::kMinClass);
  EXPECT_EQ(Arena::size_class(Arena::kMinClass), Arena::kMinClass);
  EXPECT_EQ(Arena::size_class(Arena::kMinClass + 1), 2 * Arena::kMinClass);
  EXPECT_EQ(Arena::size_class(3000), 4096);
  EXPECT_EQ(Arena::size_class(4096), 4096);
  EXPECT_EQ(Arena::size_class(4097), 8192);
}

TEST(ArenaTest, ScopeRecyclesBlocks) {
  Arena& arena = Arena::instance();
  ArenaScope scope;
  arena.reset_stats();
  const float* first;
  {
    Tensor t = Tensor::zeros({512, 8});  // 4096 floats
    first = t.data();
  }  // storage released -> cached
  EXPECT_GE(arena.stats().recycled, 1);
  Tensor t2 = Tensor::zeros({4096});  // same size class
  EXPECT_EQ(t2.data(), first);        // LIFO reuse of the cached block
  EXPECT_GE(arena.stats().hits, 1);
}

TEST(ArenaTest, RecycledBlocksAreZeroFilledOnZeros) {
  ArenaScope scope;
  {
    Tensor garbage = Tensor::full({2048}, 123.0F);
  }
  Tensor z = Tensor::zeros({2048});  // likely the recycled block
  for (int64_t i = 0; i < z.numel(); ++i) {
    ASSERT_EQ(z[i], 0.0F) << "stale data at " << i;
  }
}

TEST(ArenaTest, InactivePassThrough) {
  Arena& arena = Arena::instance();
  ASSERT_FALSE(arena.active());
  arena.reset_stats();
  {
    Tensor t = Tensor::zeros({4096});
  }
  EXPECT_EQ(arena.stats().recycled, 0);
  EXPECT_GE(arena.stats().freed, 1);
  EXPECT_EQ(arena.stats().cached_blocks, 0);
}

TEST(ArenaTest, ScopeExitTrimsCache) {
  Arena& arena = Arena::instance();
  {
    ArenaScope scope;
    { Tensor t = Tensor::zeros({8192}); }
    EXPECT_GE(arena.stats().cached_blocks, 1);
  }
  EXPECT_EQ(arena.stats().cached_blocks, 0);
  EXPECT_EQ(arena.stats().cached_bytes, 0);
}

TEST(ArenaTest, NestedScopesKeepCacheUntilOutermostExit) {
  Arena& arena = Arena::instance();
  ArenaScope outer;
  {
    ArenaScope inner;
    { Tensor t = Tensor::zeros({8192}); }
  }  // inner exit must NOT trim: outer still active
  EXPECT_TRUE(arena.active());
  EXPECT_GE(arena.stats().cached_blocks, 1);
}

TEST(ArenaTest, ByteLimitEvicts) {
  Arena& arena = Arena::instance();
  const int64_t old_limit = arena.byte_limit();
  ArenaScope scope;
  arena.set_byte_limit(1024);  // smaller than any minimum-class block
  arena.reset_stats();
  {
    Tensor t = Tensor::zeros({4096});
  }
  EXPECT_EQ(arena.stats().recycled, 0);
  EXPECT_GE(arena.stats().freed, 1);
  arena.set_byte_limit(old_limit);
}

TEST(ArenaTest, TensorsOutliveTheirScope) {
  Tensor survivor;
  {
    ArenaScope scope;
    survivor = Tensor::full({4096}, 7.0F);
  }  // scope trims its cache; survivor's block is still owned by survivor
  for (int64_t i = 0; i < survivor.numel(); ++i) {
    ASSERT_EQ(survivor[i], 7.0F);
  }
}  // survivor released after the scope: plain delete[], no arena touch

TEST(ArenaTest, ThreadedAllocationSmoke) {
  ArenaScope scope;
  parallel_for(64, [](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      Tensor t = Tensor::zeros({1024 + (i % 7) * 512});
      t.fill_(static_cast<float>(i));
      Tensor u = t.clone();
      ASSERT_EQ(u[0], static_cast<float>(i));
    }
  });
}

TEST(ArenaTest, EmptyTensorSkipsZeroFillButHasStorage) {
  Tensor t = Tensor::empty({16, 16});
  ASSERT_TRUE(t.defined());
  EXPECT_EQ(t.numel(), 256);
  t.fill_(3.0F);  // contents unspecified until written
  EXPECT_EQ(t[255], 3.0F);
  Tensor z = zeros_like(t);
  EXPECT_EQ(z.numel(), 256);
  for (int64_t i = 0; i < z.numel(); ++i) ASSERT_EQ(z[i], 0.0F);
  Tensor e = empty_like(t);
  EXPECT_TRUE(e.same_shape(t));
}

}  // namespace
}  // namespace ttsnn
