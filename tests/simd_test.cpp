// SIMD tier tests: runtime dispatch (detection, clamping, scalar masking)
// and scalar-vs-AVX2 equivalence for every kernel in simd.h. All kernels are
// reorder-free by design (unfused multiply+add in scalar order, correctly
// rounded sqrt/div), so equivalence is asserted BITWISE, across buffer sizes
// that exercise every 8-lane tail remainder.

#include "tensor/simd.h"

#include <cstdlib>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/gemm.h"
#include "tensor/tensor.h"

namespace ttsnn {
namespace {

bool has_avx2() { return simd::detected_level() == simd::Level::kAvx2; }

// Sizes covering every tail remainder mod 8, plus multi-vector bodies.
const int64_t kSizes[] = {1, 2, 3, 5, 7, 8, 9, 15, 16, 17,
                          31, 32, 33, 63, 64, 65, 100, 257};

std::vector<float> random_buf(int64_t n, Rng& rng) {
  std::vector<float> out(static_cast<size_t>(n));
  for (float& v : out) v = rng.normal();
  return out;
}

bool bits_equal(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

TEST(SimdDispatchTest, LevelGuardMasksAndRestores) {
  const simd::Level before = simd::active_level();
  {
    simd::LevelGuard guard(simd::Level::kScalar);
    EXPECT_EQ(simd::active_level(), simd::Level::kScalar);
    {
      // Requesting AVX2 is clamped to what the CPU supports.
      simd::LevelGuard inner(simd::Level::kAvx2);
      EXPECT_EQ(simd::active_level(), simd::detected_level());
    }
    EXPECT_EQ(simd::active_level(), simd::Level::kScalar);
  }
  EXPECT_EQ(simd::active_level(), before);
}

TEST(SimdDispatchTest, ScalarFallbackStillComputes) {
  // With AVX2 masked off, every kernel must run the scalar path and agree
  // with a hand-rolled loop.
  simd::LevelGuard guard(simd::Level::kScalar);
  ASSERT_EQ(simd::active_level(), simd::Level::kScalar);
  Rng rng(1);
  std::vector<float> x = random_buf(37, rng);
  std::vector<float> y = random_buf(37, rng);
  std::vector<float> expect = y;
  for (size_t i = 0; i < expect.size(); ++i) expect[i] += 0.25F * x[i];
  simd::axpy(37, 0.25F, x.data(), y.data());
  EXPECT_TRUE(bits_equal(expect, y));
}

TEST(SimdDispatchTest, EnvMaskForcesScalar) {
  // When the CI job masks AVX2 off via TTSNN_SIMD=scalar, detection must
  // come back scalar even on AVX2 hardware. (Detection is latched at first
  // use, so this asserts only under the env var — the bench smoke job runs
  // this binary both ways.)
  const char* env = std::getenv("TTSNN_SIMD");
  if (env != nullptr && std::strcmp(env, "scalar") == 0) {
    EXPECT_EQ(simd::detected_level(), simd::Level::kScalar);
    EXPECT_EQ(simd::active_level(), simd::Level::kScalar);
  } else {
    GTEST_SKIP() << "TTSNN_SIMD not set to scalar";
  }
}

/// Runs `fn` once per tier on identical copies of the inputs and expects
/// bitwise-identical outputs. fn(level-local buffers...) mutates in place.
template <typename Fn>
void expect_tiers_bitwise(int64_t n, int num_bufs, Fn&& fn) {
  if (!has_avx2()) GTEST_SKIP() << "no AVX2 on this host";
  Rng rng(static_cast<uint64_t>(n) * 7919 + 13);
  std::vector<std::vector<float>> init;
  init.reserve(static_cast<size_t>(num_bufs));
  for (int b = 0; b < num_bufs; ++b) init.push_back(random_buf(n, rng));

  auto run = [&](simd::Level level) {
    simd::LevelGuard guard(level);
    std::vector<std::vector<float>> bufs = init;
    fn(bufs);
    return bufs;
  };
  const auto scalar = run(simd::Level::kScalar);
  const auto avx2 = run(simd::Level::kAvx2);
  for (int b = 0; b < num_bufs; ++b) {
    EXPECT_TRUE(bits_equal(scalar[static_cast<size_t>(b)],
                           avx2[static_cast<size_t>(b)]))
        << "n=" << n << " buffer=" << b;
  }
}

TEST(SimdKernelTest, AxpyBitwiseAcrossTails) {
  for (int64_t n : kSizes) {
    expect_tiers_bitwise(n, 2, [n](auto& b) {
      simd::axpy(n, -1.375F, b[0].data(), b[1].data());
    });
  }
}

TEST(SimdKernelTest, MulScaleReluBitwiseAcrossTails) {
  for (int64_t n : kSizes) {
    expect_tiers_bitwise(n, 2, [n](auto& b) {
      simd::mul(n, b[0].data(), b[1].data());
      simd::scale(n, 0.77F, b[1].data());
      simd::relu(n, b[1].data());
    });
  }
}

TEST(SimdKernelTest, AffineBitwiseAcrossTails) {
  for (int64_t n : kSizes) {
    expect_tiers_bitwise(n, 2, [n](auto& b) {
      simd::affine(n, 0.31F, 1.9F, -0.6F, 0.05F, b[0].data(), b[1].data());
    });
  }
}

TEST(SimdKernelTest, LifStepsBitwiseAcrossTails) {
  for (int64_t n : kSizes) {
    for (bool zero_reset : {true, false}) {
      expect_tiers_bitwise(n, 4, [n, zero_reset](auto& b) {
        // Two chained steps so the carried membrane state is exercised.
        simd::lif_step_eval(n, 0.5F, 0.4F, zero_reset, b[0].data(),
                            b[1].data(), b[2].data());
        simd::lif_step_train(n, 0.5F, 0.4F, zero_reset, b[0].data(),
                             b[1].data(), b[3].data(), b[2].data());
      });
    }
  }
}

TEST(SimdKernelTest, LifBackwardBitwiseAcrossTails) {
  const simd::LifSurrogate kinds[] = {simd::LifSurrogate::kRectangle,
                                      simd::LifSurrogate::kTriangle,
                                      simd::LifSurrogate::kAtan};
  for (int64_t n : kSizes) {
    for (simd::LifSurrogate kind : kinds) {
      for (bool zero_reset : {true, false}) {
        for (bool detach : {true, false}) {
          expect_tiers_bitwise(n, 5, [=](auto& b) {
            // b[2] plays the cached spikes: binarize it first (same scalar
            // ops on both tiers).
            for (float& s : b[2]) s = s > 0.0F ? 1.0F : 0.0F;
            // Two chained steps exercise the gu_post carry.
            simd::lif_backward_step(n, kind, 0.8F, 0.5F, 0.4F, zero_reset,
                                    detach, b[0].data(), b[1].data(),
                                    b[2].data(), b[3].data(), b[4].data());
            simd::lif_backward_step(n, kind, 0.8F, 0.5F, 0.4F, zero_reset,
                                    detach, b[4].data(), b[1].data(),
                                    b[2].data(), b[3].data(), b[4].data());
          });
        }
      }
    }
  }
}

TEST(SimdKernelTest, AdamAndSgdBitwiseAcrossTails) {
  for (int64_t n : kSizes) {
    expect_tiers_bitwise(n, 4, [n](auto& b) {
      // The second-moment buffer must be non-negative or sqrt produces NaNs
      // (whose payloads are not specified across scalar/vector sqrt).
      for (float& v : b[2]) v = v * v;
      simd::adam_step(n, 1e-3F, 0.9F, 0.999F, 0.1F, 0.0199F, 1e-8F, 1e-4F,
                      b[0].data(), b[1].data(), b[2].data(), b[3].data());
      simd::sgd_step(n, 0.1F, 0.9F, 1e-4F, b[0].data(), b[2].data(),
                     b[3].data());
    });
  }
}

// --- GEMM: the kSimd tier must be bit-identical to the naive kernel ---------

Tensor run_gemm(GemmKernel kernel, bool trans_a, int64_t m, int64_t n,
                int64_t k, const Tensor& a, const Tensor& b) {
  GemmKernelGuard guard(kernel);
  GemmThreadsGuard threads(1);
  Tensor c = Tensor::zeros({m, n});
  gemm(trans_a, false, m, n, k, 1.0F, a.data(), b.data(), 0.0F, c.data());
  return c;
}

TEST(SimdGemmTest, SimdMatchesNaiveBitwise) {
  if (!has_avx2()) GTEST_SKIP() << "no AVX2 on this host";
  // Odd shapes exercise the panel and 8-lane tails; bernoulli A exercises
  // the zero-skip branches of the 4-row microkernel.
  const int64_t shapes[][3] = {
      {1, 1, 1}, {3, 5, 7}, {17, 9, 33}, {33, 129, 65}, {65, 31, 129},
      {128, 257, 64}};
  Rng rng(5);
  for (bool trans_a : {false, true}) {
    for (const auto& s : shapes) {
      const int64_t m = s[0], n = s[1], k = s[2];
      for (float density : {0.4F, 1.0F}) {
        Tensor a = trans_a ? Tensor::bernoulli({k, m}, rng, density)
                           : Tensor::bernoulli({m, k}, rng, density);
        Tensor b = Tensor::randn({k, n}, rng);
        Tensor ref = run_gemm(GemmKernel::kNaive, trans_a, m, n, k, a, b);
        Tensor out = run_gemm(GemmKernel::kSimd, trans_a, m, n, k, a, b);
        ASSERT_EQ(std::memcmp(ref.data(), out.data(),
                              static_cast<size_t>(ref.numel()) * sizeof(float)),
                  0)
            << (trans_a ? "tn" : "nn") << " m=" << m << " n=" << n
            << " k=" << k << " density=" << density;
      }
    }
  }
}

TEST(SimdGemmTest, SimdPinDegradesGracefullyWhenMasked) {
  // kSimd pinned while the scalar tier is active must route to the blocked
  // scalar kernel — same bits, no dispatch into AVX2 code.
  simd::LevelGuard guard(simd::Level::kScalar);
  Rng rng(6);
  Tensor a = Tensor::randn({33, 65}, rng);
  Tensor b = Tensor::randn({65, 17}, rng);
  Tensor ref = run_gemm(GemmKernel::kNaive, false, 33, 17, 65, a, b);
  Tensor out = run_gemm(GemmKernel::kSimd, false, 33, 17, 65, a, b);
  EXPECT_EQ(std::memcmp(ref.data(), out.data(),
                        static_cast<size_t>(ref.numel()) * sizeof(float)),
            0);
}

}  // namespace
}  // namespace ttsnn
