// Tests for TTConv2d, the paper's core contribution: shape behaviour across
// STT/PTT/HTT, end-to-end gradient checks in every mode, thread-parallel
// branch determinism, and the merge equivalences of Eq. (6) — factorized
// training output must match the merged dense kernel EXACTLY (the property
// that lets TT-SNN fall back to spike-driven inference after training).

#include <gtest/gtest.h>

#include "core/ttconv.h"
#include "gradcheck.h"
#include "nn/conv2d.h"
#include "tensor/ops.h"

namespace ttsnn {
namespace {

TEST(TTConvTest, OutputShapesAllModes) {
  Rng rng(1);
  for (TTMode mode : {TTMode::kSTT, TTMode::kPTT, TTMode::kHTT}) {
    TTConv2d::Options o{.in_channels = 4, .out_channels = 6, .kernel = 3,
                        .stride = 1, .rank = 3, .mode = mode,
                        .full_step = std::vector<bool>{true, false}};
    TTConv2d conv(o, rng);
    Tensor x = Tensor::randn({2, 2, 4, 6, 6}, rng);
    Tensor y = conv.forward(x);
    EXPECT_EQ(y.shape(), (Shape{2, 2, 6, 6, 6})) << tt_mode_name(mode);
  }
}

TEST(TTConvTest, StridedOutputShapesAllModes) {
  Rng rng(2);
  for (TTMode mode : {TTMode::kSTT, TTMode::kPTT, TTMode::kHTT}) {
    TTConv2d::Options o{.in_channels = 4, .out_channels = 8, .kernel = 3,
                        .stride = 2, .rank = 3, .mode = mode,
                        .full_step = std::vector<bool>{true, false}};
    TTConv2d conv(o, rng);
    Tensor x = Tensor::randn({2, 1, 4, 8, 8}, rng);
    Tensor y = conv.forward(x);
    EXPECT_EQ(y.shape(), (Shape{2, 1, 8, 4, 4})) << tt_mode_name(mode);
  }
}

class TTConvGradTest
    : public ::testing::TestWithParam<std::tuple<TTMode, int64_t>> {};

TEST_P(TTConvGradTest, GradCheckInputAndCores) {
  auto [mode, stride] = GetParam();
  Rng rng(3);
  TTConv2d::Options o{.in_channels = 3, .out_channels = 4, .kernel = 3,
                      .stride = stride, .rank = 2, .mode = mode,
                      .full_step = std::vector<bool>{true, false, false},
                      .parallel_branches = false};
  TTConv2d conv(o, rng);
  Tensor x = Tensor::randn({3, 1, 3, 6, 6}, rng);
  const int64_t oh = stride == 1 ? 6 : 3;
  Tensor w = Tensor::randn({3, 1, 4, oh, oh}, rng);
  check_input_grad(conv, x, w);
  check_param_grads(conv, x, w);
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndStrides, TTConvGradTest,
    ::testing::Combine(::testing::Values(TTMode::kSTT, TTMode::kPTT,
                                         TTMode::kHTT),
                       ::testing::Values<int64_t>(1, 2)));

TEST(TTConvTest, ParallelBranchesMatchSerial) {
  Rng rng(4);
  TTConv2d::Options base{.in_channels = 6, .out_channels = 6, .kernel = 3,
                         .stride = 1, .rank = 4, .mode = TTMode::kPTT};
  TTConv2d::Options par = base;
  par.parallel_branches = true;
  base.parallel_branches = false;

  TTConv2d serial(base, rng);
  TTConv2d parallel(par, serial.cores());
  Tensor x = Tensor::randn({2, 2, 6, 8, 8}, rng);
  Tensor ys = serial.forward(x);
  Tensor yp = parallel.forward(x);
  EXPECT_LT(max_abs_diff(ys, yp), 1e-6);

  Tensor g = Tensor::randn(ys.shape(), rng);
  Tensor gs = serial.backward(g);
  Tensor gp = parallel.backward(g);
  EXPECT_LT(max_abs_diff(gs, gp), 1e-5);
  EXPECT_LT(max_abs_diff(serial.w2().grad, parallel.w2().grad), 1e-4);
  EXPECT_LT(max_abs_diff(serial.w3().grad, parallel.w3().grad), 1e-4);
}

TEST(TTConvTest, HttHalfStepsSkipStrips) {
  // With an all-half schedule the strips must not contribute: zeroing w2/w3
  // must not change the output.
  Rng rng(5);
  TTConv2d::Options o{.in_channels = 4, .out_channels = 4, .kernel = 3,
                      .stride = 1, .rank = 3, .mode = TTMode::kHTT,
                      .full_step = std::vector<bool>{false, false}};
  TTConv2d conv(o, rng);
  Tensor x = Tensor::randn({2, 1, 4, 5, 5}, rng);
  Tensor y1 = conv.forward(x);
  conv.w2().value.zero_();
  conv.w3().value.zero_();
  Tensor y2 = conv.forward(x);
  EXPECT_LT(max_abs_diff(y1, y2), 1e-7);
}

TEST(TTConvTest, HttFullStepsMatchPtt) {
  // With an all-full schedule HTT must equal PTT exactly.
  Rng rng(6);
  TTConv2d::Options po{.in_channels = 4, .out_channels = 5, .kernel = 3,
                       .stride = 1, .rank = 3, .mode = TTMode::kPTT};
  TTConv2d ptt(po, rng);
  TTConv2d::Options ho = po;
  ho.mode = TTMode::kHTT;
  ho.full_step = {true, true, true};
  TTConv2d htt(ho, ptt.cores());
  Tensor x = Tensor::randn({3, 2, 4, 5, 5}, rng);
  EXPECT_LT(max_abs_diff(ptt.forward(x), htt.forward(x)), 1e-6);
}

TEST(TTConvTest, HttScheduleMixesPaths) {
  // Step 0 full, step 1 half: step 0 output must match PTT, step 1 must
  // match the pointwise half path.
  Rng rng(7);
  TTConv2d::Options o{.in_channels = 3, .out_channels = 3, .kernel = 3,
                      .stride = 1, .rank = 2, .mode = TTMode::kHTT,
                      .full_step = std::vector<bool>{true, false}};
  TTConv2d htt(o, rng);
  Tensor x = Tensor::randn({2, 1, 3, 4, 4}, rng);
  Tensor y = htt.forward(x);

  TTConv2d::Options po = o;
  po.mode = TTMode::kPTT;
  po.full_step.clear();
  TTConv2d ptt(po, htt.cores());
  Tensor y_ptt = ptt.forward(x);
  EXPECT_LT(max_abs_diff(y.slice0(0, 1), y_ptt.slice0(0, 1)), 1e-6);

  // Half path: dense 1x1 conv with the merged half kernel.
  Conv2d half({.in_channels = 3, .out_channels = 3, .kernel_h = 1, .kernel_w = 1},
              htt.merged_half_kernel());
  Tensor y_half = half.forward(x.slice0(1, 2));
  EXPECT_LT(max_abs_diff(y.slice0(1, 2), y_half), 1e-5);
}

// ---- Merge equivalence (Algorithm 1 lines 20-22) ----------------------------

class MergeEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<TTMode, int64_t>> {};

TEST_P(MergeEquivalenceTest, FactorizedOutputEqualsMergedDenseConv) {
  auto [mode, stride] = GetParam();
  Rng rng(8);
  TTConv2d::Options o{.in_channels = 5, .out_channels = 7, .kernel = 3,
                      .stride = stride, .rank = 3, .mode = mode};
  TTConv2d tt(o, rng);
  Tensor x = Tensor::randn({2, 2, 5, 8, 8}, rng);
  Tensor y_tt = tt.forward(x);

  Conv2d dense({.in_channels = 5, .out_channels = 7, .kernel_h = 3,
                .kernel_w = 3, .stride = stride},
               tt.merged_kernel());
  Tensor y_dense = dense.forward(x);
  // Exact equivalence including borders: the sub-convolutions mix rows and
  // columns in separate stages, so zero padding composes losslessly.
  EXPECT_LT(max_abs_diff(y_tt, y_dense), 1e-4)
      << tt_mode_name(mode) << " stride " << stride;
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndStrides, MergeEquivalenceTest,
    ::testing::Combine(::testing::Values(TTMode::kSTT, TTMode::kPTT),
                       ::testing::Values<int64_t>(1, 2)));

TEST(TTConvTest, DescribeEmitsFourSubConvs) {
  Rng rng(9);
  TTConv2d::Options o{.in_channels = 8, .out_channels = 16, .kernel = 3,
                      .stride = 2, .rank = 4, .mode = TTMode::kPTT};
  TTConv2d conv(o, rng);
  ShapeState s{.c = 8, .h = 8, .w = 8};
  std::vector<LayerDesc> descs;
  conv.describe(s, descs);
  ASSERT_EQ(descs.size(), 4u);
  EXPECT_EQ(descs[0].detail, "PTT.w1");
  EXPECT_EQ(descs[3].detail, "PTT.w4");
  // w1 at full resolution, w4 at strided resolution.
  EXPECT_EQ(descs[0].out_h, 8);
  EXPECT_EQ(descs[3].out_h, 4);
  // Total params match the TT formula.
  int64_t params = 0;
  for (const auto& d : descs) params += d.params;
  EXPECT_EQ(params, tt_num_params(8, 16, 3, 4));
  EXPECT_EQ(s.c, 16);
  EXPECT_EQ(s.h, 4);
}

TEST(TTConvTest, HttDescribeReportsUtilization) {
  Rng rng(10);
  TTConv2d::Options o{.in_channels = 4, .out_channels = 4, .kernel = 3,
                      .stride = 1, .rank = 2, .mode = TTMode::kHTT,
                      .full_step = std::vector<bool>{true, true, false, false}};
  TTConv2d conv(o, rng);
  ShapeState s{.c = 4, .h = 4, .w = 4};
  std::vector<LayerDesc> descs;
  conv.describe(s, descs);
  ASSERT_EQ(descs.size(), 4u);
  EXPECT_DOUBLE_EQ(descs[0].utilization, 1.0);  // w1 always runs
  EXPECT_DOUBLE_EQ(descs[1].utilization, 0.5);  // strips run on half the steps
  EXPECT_DOUBLE_EQ(descs[2].utilization, 0.5);
  EXPECT_DOUBLE_EQ(descs[3].utilization, 1.0);  // w4 always runs
}

TEST(TTConvTest, InitFromCoresPreservesWeights) {
  Rng rng(11);
  TTConv2d::Options o{.in_channels = 4, .out_channels = 4, .kernel = 3,
                      .stride = 1, .rank = 2, .mode = TTMode::kSTT};
  TTConv2d a(o, rng);
  TTConv2d b(o, a.cores());
  Tensor x = Tensor::randn({1, 1, 4, 5, 5}, rng);
  EXPECT_LT(max_abs_diff(a.forward(x), b.forward(x)), 1e-7);
}

TEST(TTConvTest, RejectsBadOptions) {
  Rng rng(12);
  EXPECT_THROW(TTConv2d({.in_channels = 4, .out_channels = 4, .kernel = 2,
                         .rank = 2},
                        rng),
               Error);
  EXPECT_THROW(TTConv2d({.in_channels = 4, .out_channels = 4, .kernel = 3,
                         .rank = 0},
                        rng),
               Error);
  EXPECT_THROW(TTConv2d({.in_channels = 4, .out_channels = 4, .kernel = 0,
                         .rank = 2},
                        rng),
               Error);
  EXPECT_THROW(TTConv2d({.in_channels = 4, .out_channels = 4, .kernel = 3,
                         .stride = 0, .rank = 2},
                        rng),
               Error);
  EXPECT_THROW(TTConv2d({.in_channels = 0, .out_channels = 4, .kernel = 3,
                         .rank = 2},
                        rng),
               Error);
  // The cores constructor validates the same options.
  TTConv2d good({.in_channels = 4, .out_channels = 4, .kernel = 3, .rank = 2},
                rng);
  EXPECT_THROW(TTConv2d({.in_channels = 4, .out_channels = 4, .kernel = 3,
                         .stride = -1},
                        good.cores()),
               Error);
}

TEST(TTConvTest, EvalForwardKeepsNoCaches) {
  for (TTMode mode : {TTMode::kSTT, TTMode::kPTT, TTMode::kHTT}) {
    Rng rng(20);
    TTConv2d::Options o{.in_channels = 3, .out_channels = 4, .kernel = 3,
                        .stride = 1, .rank = 2, .mode = mode,
                        .full_step = std::vector<bool>{true, false}};
    TTConv2d conv(o, rng);
    Tensor x = Tensor::randn({2, 2, 3, 5, 5}, rng);

    // Same numbers with and without caching.
    Tensor y_train = conv.forward(x);
    conv.set_training(false);
    Tensor y_eval = conv.forward(x);
    EXPECT_EQ(max_abs_diff(y_train, y_eval), 0.0) << tt_mode_name(mode);

    // Backward needs the forward caches; an eval forward must not have
    // retained (or kept stale) activations, so backward fails loudly.
    EXPECT_THROW(conv.backward(y_eval), Error) << tt_mode_name(mode);
  }
}

TEST(TTConvTest, HttScheduleTooShortThrows) {
  Rng rng(13);
  TTConv2d::Options o{.in_channels = 3, .out_channels = 3, .kernel = 3,
                      .stride = 1, .rank = 2, .mode = TTMode::kHTT,
                      .full_step = std::vector<bool>{true, false}};
  TTConv2d conv(o, rng);
  Tensor x = Tensor::randn({4, 1, 3, 4, 4}, rng);  // T=4 > schedule size 2
  EXPECT_THROW(conv.forward(x), Error);
}

}  // namespace
}  // namespace ttsnn
