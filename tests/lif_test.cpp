// LIF neuron tests: forward dynamics against hand-computed traces, BPTT
// backward against an independent reference implementation, and surrogate
// gradient functions.

#include <cmath>

#include <gtest/gtest.h>

#include "nn/lif.h"
#include "tensor/ops.h"

namespace ttsnn {
namespace {

TEST(SurrogateTest, RectangleWindow) {
  // alpha=1, vth=0.5: gradient 1 inside |u-0.5|<0.5, else 0.
  EXPECT_FLOAT_EQ(surrogate_grad(Surrogate::kRectangle, 1.0F, 0.5F, 0.5F), 1.0F);
  EXPECT_FLOAT_EQ(surrogate_grad(Surrogate::kRectangle, 1.0F, 0.5F, 0.9F), 1.0F);
  EXPECT_FLOAT_EQ(surrogate_grad(Surrogate::kRectangle, 1.0F, 0.5F, 1.1F), 0.0F);
  EXPECT_FLOAT_EQ(surrogate_grad(Surrogate::kRectangle, 1.0F, 0.5F, -0.1F), 0.0F);
}

TEST(SurrogateTest, TrianglePeaksAtThreshold) {
  const float at_th = surrogate_grad(Surrogate::kTriangle, 1.0F, 0.5F, 0.5F);
  const float off = surrogate_grad(Surrogate::kTriangle, 1.0F, 0.5F, 0.9F);
  EXPECT_FLOAT_EQ(at_th, 1.0F);
  EXPECT_GT(at_th, off);
  EXPECT_FLOAT_EQ(surrogate_grad(Surrogate::kTriangle, 1.0F, 0.5F, 2.0F), 0.0F);
}

TEST(SurrogateTest, AtanSymmetricAroundThreshold) {
  const float lo = surrogate_grad(Surrogate::kAtan, 2.0F, 0.5F, 0.3F);
  const float hi = surrogate_grad(Surrogate::kAtan, 2.0F, 0.5F, 0.7F);
  EXPECT_NEAR(lo, hi, 1e-6);
  EXPECT_GT(surrogate_grad(Surrogate::kAtan, 2.0F, 0.5F, 0.5F), lo);
}

TEST(SurrogateTest, SigmoidMatchesAnalyticDerivative) {
  // FD check of sigmoid((u - vth)/alpha) wrt u.
  const float alpha = 0.5F, vth = 0.5F, u = 0.62F, h = 1e-3F;
  auto sig = [&](float x) { return 1.0F / (1.0F + std::exp(-(x - vth) / alpha)); };
  const float fd = (sig(u + h) - sig(u - h)) / (2 * h);
  EXPECT_NEAR(surrogate_grad(Surrogate::kSigmoid, alpha, vth, u), fd, 1e-4);
}

TEST(LifTest, IntegratesAndFires) {
  // tau=0.25, vth=0.5. Inputs of 0.3 each step:
  // t0: u=0.3 (no spike), t1: u=0.25*0.3+0.3=0.375 (no), t2: u=0.39375 (no)...
  // never reaches 0.5. With input 0.6: fires every step and resets.
  LIFNeuron lif;
  Tensor weak = Tensor::full({4, 1, 1}, 0.3F);
  Tensor s1 = lif.forward(weak);
  EXPECT_DOUBLE_EQ(s1.sum(), 0.0);

  LIFNeuron lif2;
  Tensor strong = Tensor::full({4, 1, 1}, 0.6F);
  Tensor s2 = lif2.forward(strong);
  EXPECT_DOUBLE_EQ(s2.sum(), 4.0);
}

TEST(LifTest, HandComputedMembraneTrace) {
  // tau=0.5, vth=1.0; inputs [0.6, 0.6, 0.6]:
  // t0: u=0.6, s=0, u_post=0.6
  // t1: u=0.5*0.6+0.6=0.9, s=0, u_post=0.9
  // t2: u=0.5*0.9+0.6=1.05, s=1, u_post=0
  LIFNeuron lif({.tau = 0.5F, .v_th = 1.0F});
  Tensor x = Tensor::full({3, 1, 1}, 0.6F);
  Tensor s = lif.forward(x);
  EXPECT_FLOAT_EQ(s[0], 0.0F);
  EXPECT_FLOAT_EQ(s[1], 0.0F);
  EXPECT_FLOAT_EQ(s[2], 1.0F);
}

TEST(LifTest, ResetClearsPotential) {
  // After a spike the membrane restarts from 0: identical input sequences
  // separated by a spike produce identical spike timing.
  LIFNeuron lif({.tau = 0.5F, .v_th = 1.0F});
  // 1.2 fires immediately; then weak inputs accumulate from zero.
  Tensor x({4, 1, 1}, {1.2F, 0.7F, 0.7F, 0.7F});
  Tensor s = lif.forward(x);
  EXPECT_FLOAT_EQ(s[0], 1.0F);
  EXPECT_FLOAT_EQ(s[1], 0.0F);  // u = 0*0.5 + 0.7 = 0.7 < 1
  EXPECT_FLOAT_EQ(s[2], 1.0F);  // u = 0.35 + 0.7 = 1.05 >= 1
  EXPECT_FLOAT_EQ(s[3], 0.0F);
}

TEST(LifTest, OutputsAreBinary) {
  Rng rng(3);
  LIFNeuron lif;
  Tensor x = Tensor::randn({5, 2, 3, 4, 4}, rng);
  Tensor s = lif.forward(x);
  for (int64_t i = 0; i < s.numel(); ++i) {
    EXPECT_TRUE(s[i] == 0.0F || s[i] == 1.0F);
  }
  EXPECT_EQ(lif.last_spike_density(), s.density());
}

/// Independent reference implementation of LIF BPTT, written as explicit
/// per-element recursion (no vectorization), used to validate the production
/// backward pass.
struct LifReference {
  float tau, vth, alpha;
  bool detach_reset;
  Surrogate kind;

  // forward over T scalar inputs; returns spikes and caches u.
  std::vector<float> u, s;
  void forward(const std::vector<float>& in) {
    u.assign(in.size(), 0.0F);
    s.assign(in.size(), 0.0F);
    float u_post = 0.0F;
    for (size_t t = 0; t < in.size(); ++t) {
      u[t] = tau * u_post + in[t];
      s[t] = u[t] >= vth ? 1.0F : 0.0F;
      u_post = u[t] * (1.0F - s[t]);
    }
  }
  // backward given dL/ds per step.
  std::vector<float> backward(const std::vector<float>& gs) const {
    std::vector<float> gi(gs.size(), 0.0F);
    float gu_post = 0.0F;
    for (int t = static_cast<int>(gs.size()) - 1; t >= 0; --t) {
      const float surr = surrogate_grad(kind, alpha, vth, u[static_cast<size_t>(t)]);
      float gu = gs[static_cast<size_t>(t)] * surr +
                 gu_post * (1.0F - s[static_cast<size_t>(t)]);
      if (!detach_reset) gu -= gu_post * u[static_cast<size_t>(t)] * surr;
      gi[static_cast<size_t>(t)] = gu;
      gu_post = tau * gu;
    }
    return gi;
  }
};

class LifBackwardTest
    : public ::testing::TestWithParam<std::tuple<Surrogate, bool>> {};

TEST_P(LifBackwardTest, MatchesReferenceImplementation) {
  auto [kind, detach] = GetParam();
  const int64_t T = 6, M = 40;
  Rng rng(42);
  LIFNeuron lif({.tau = 0.25F, .v_th = 0.5F, .surrogate = kind,
                 .surrogate_alpha = 1.0F, .detach_reset = detach});
  Tensor x = Tensor::uniform({T, M}, rng, -0.2F, 1.0F);
  Tensor g = Tensor::randn({T, M}, rng);
  lif.forward(x);
  Tensor gi = lif.backward(g);

  for (int64_t i = 0; i < M; ++i) {
    LifReference ref{.tau = 0.25F, .vth = 0.5F, .alpha = 1.0F,
                     .detach_reset = detach, .kind = kind};
    std::vector<float> in(T), gs(T);
    for (int64_t t = 0; t < T; ++t) {
      in[static_cast<size_t>(t)] = x.at({t, i});
      gs[static_cast<size_t>(t)] = g.at({t, i});
    }
    ref.forward(in);
    auto gref = ref.backward(gs);
    for (int64_t t = 0; t < T; ++t) {
      EXPECT_NEAR(gi.at({t, i}), gref[static_cast<size_t>(t)], 1e-5)
          << "element " << i << " step " << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Variants, LifBackwardTest,
    ::testing::Combine(::testing::Values(Surrogate::kRectangle,
                                         Surrogate::kTriangle, Surrogate::kAtan,
                                         Surrogate::kSigmoid),
                       ::testing::Bool()));

TEST(LifTest, TemporalCreditAssignment) {
  // Gradient at step t must flow back to inputs at steps < t when no spike
  // interrupts the membrane chain (leak factor tau per step).
  LIFNeuron lif({.tau = 0.5F, .v_th = 10.0F, .surrogate = Surrogate::kSigmoid,
                 .surrogate_alpha = 4.0F});
  Tensor x = Tensor::full({3, 1, 1}, 0.1F);  // never spikes
  lif.forward(x);
  Tensor g = Tensor::zeros({3, 1, 1});
  g[2] = 1.0F;  // loss only at the last step
  Tensor gi = lif.backward(g);
  // gi[t] = surr'(u2) * tau^(2-t); ratios must equal tau.
  EXPECT_GT(gi[2], 0.0F);
  EXPECT_NEAR(gi[1] / gi[2], 0.5F, 1e-5);
  EXPECT_NEAR(gi[0] / gi[1], 0.5F, 1e-5);
}

TEST(LifTest, SoftResetSubtractsThreshold) {
  // tau=1 (no leak), vth=1. Input 1.5 at t0: spikes, u_post = 0.5.
  // t1 input 0.6: u = 1.1 -> spikes again (hard reset would not: u = 0.6).
  LIFNeuron soft({.tau = 1.0F, .v_th = 1.0F, .reset = ResetMode::kSubtract});
  Tensor x({2, 1, 1}, {1.5F, 0.6F});
  Tensor s = soft.forward(x);
  EXPECT_FLOAT_EQ(s[0], 1.0F);
  EXPECT_FLOAT_EQ(s[1], 1.0F);

  LIFNeuron hard({.tau = 1.0F, .v_th = 1.0F, .reset = ResetMode::kZero});
  Tensor s2 = hard.forward(x);
  EXPECT_FLOAT_EQ(s2[0], 1.0F);
  EXPECT_FLOAT_EQ(s2[1], 0.0F);
}

TEST(LifTest, SoftResetPreservesResidualCharge) {
  // Soft reset keeps (u - vth) so neurons with strong drive fire at a rate
  // proportional to the input; hard reset discards the overshoot.
  LIFNeuron soft({.tau = 1.0F, .v_th = 1.0F, .reset = ResetMode::kSubtract});
  LIFNeuron hard({.tau = 1.0F, .v_th = 1.0F, .reset = ResetMode::kZero});
  Tensor x = Tensor::full({8, 1, 1}, 0.75F);
  const double soft_rate = soft.forward(x).sum() / 8.0;
  const double hard_rate = hard.forward(x).sum() / 8.0;
  EXPECT_NEAR(soft_rate, 0.75, 0.15);  // rate coding: ~input/vth
  EXPECT_LT(hard_rate, soft_rate);
}

class LifSoftResetBackwardTest : public ::testing::TestWithParam<bool> {};

TEST_P(LifSoftResetBackwardTest, MatchesReferenceImplementation) {
  const bool detach = GetParam();
  const int64_t T = 5, M = 30;
  Rng rng(77);
  LIFNeuron lif({.tau = 0.5F, .v_th = 0.6F, .surrogate = Surrogate::kTriangle,
                 .surrogate_alpha = 1.0F, .detach_reset = detach,
                 .reset = ResetMode::kSubtract});
  Tensor x = Tensor::uniform({T, M}, rng, -0.2F, 1.2F);
  Tensor g = Tensor::randn({T, M}, rng);
  lif.forward(x);
  Tensor gi = lif.backward(g);

  // Reference: per-element soft-reset BPTT recursion.
  for (int64_t i = 0; i < M; ++i) {
    std::vector<float> u(T), s(T);
    float u_post = 0.0F;
    for (int64_t t = 0; t < T; ++t) {
      u[static_cast<size_t>(t)] = 0.5F * u_post + x.at({t, i});
      s[static_cast<size_t>(t)] = u[static_cast<size_t>(t)] >= 0.6F ? 1.0F : 0.0F;
      u_post = u[static_cast<size_t>(t)] - 0.6F * s[static_cast<size_t>(t)];
    }
    float gu_post = 0.0F;
    for (int64_t t = T - 1; t >= 0; --t) {
      const float surr = surrogate_grad(Surrogate::kTriangle, 1.0F, 0.6F,
                                        u[static_cast<size_t>(t)]);
      float gu = g.at({t, i}) * surr + gu_post;
      if (!detach) gu -= gu_post * 0.6F * surr;
      EXPECT_NEAR(gi.at({t, i}), gu, 1e-5) << "elem " << i << " t " << t;
      gu_post = 0.5F * gu;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(DetachVariants, LifSoftResetBackwardTest,
                         ::testing::Bool());

TEST(LifTest, RejectsBadOptions) {
  EXPECT_THROW(LIFNeuron({.tau = 0.0F}), Error);
  EXPECT_THROW(LIFNeuron({.tau = 1.5F}), Error);
  EXPECT_THROW(LIFNeuron({.surrogate_alpha = 0.0F}), Error);
}

TEST(LifTest, BackwardBeforeForwardThrows) {
  LIFNeuron lif;
  EXPECT_THROW(lif.backward(Tensor::zeros({1, 1})), Error);
}

}  // namespace
}  // namespace ttsnn
