// Fuzz harness for the elementwise-fusion pass (infer/compile.cpp): seeded
// random module trees — depth, channels, TT mode (none/stt/ptt/htt), stride,
// BN flavor (incl. TEBN), pool placement — each compiled with fusion on and
// off, in both the exact and the merged lowering, asserting BIT-identical
// outputs against eval-mode Module::forward. Any failure prints the exact
// TTSNN_TEST_SEED line that replays the sample plus the fused plan summary.
//
// Environment:
//  - TTSNN_TEST_SEED=<n>  replay exactly one sample
//  - TTSNN_FUZZ_ITERS=<n> bound the sweep (sanitizer CI jobs)

#include <string>

#include <gtest/gtest.h>

#include "infer/engine.h"
#include "model_gen.h"
#include "tensor/ops.h"

namespace ttsnn {
namespace {

int count_fused(const infer::Engine& engine) {
  int n = 0;
  for (const infer::Op& op : engine.ops()) {
    switch (op.kind) {
      case infer::Op::Kind::kConvLif:
      case infer::Op::Kind::kAffineLif:
      case infer::Op::Kind::kAddLif:
      case infer::Op::Kind::kAffineAdd:
        ++n;
        break;
      default:
        break;
    }
  }
  return n;
}

/// One sample: ground truth from eval Module::forward, then four engines —
/// {exact, merged} x {fusion on, fusion off}. The exact lowerings must match
/// the module bit-for-bit; the merged pair must match each other bit-for-bit.
/// Returns the fused-op count so the sweep can assert fusion actually fired.
int check_sample(uint64_t seed, const testgen::GeneratedModel& gm) {
  SCOPED_TRACE(testgen::seed_line(seed));
  SCOPED_TRACE(gm.desc);

  Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);  // input stream independent of gen
  Tensor x = Tensor::uniform(gm.input, rng);
  Tensor want = gm.net->forward(x);
  gm.net->clear_cache();

  const infer::CompileOptions exact_on{.merge_tt = false,
                                       .fold_batchnorm = false};
  const infer::CompileOptions exact_off{.merge_tt = false,
                                        .fold_batchnorm = false,
                                        .fuse_elementwise = false};
  infer::Engine e_on = infer::compile(*gm.net, exact_on);
  infer::Engine e_off = infer::compile(*gm.net, exact_off);
  Tensor y_on = e_on.run(x);
  Tensor y_off = e_off.run(x);
  EXPECT_EQ(y_on.shape(), want.shape());
  EXPECT_EQ(max_abs_diff(y_off, want), 0.0)
      << "exact lowering (fusion OFF) drifted from Module::forward\n"
      << e_off.summary();
  EXPECT_EQ(max_abs_diff(y_on, want), 0.0)
      << "exact lowering (fusion ON) drifted from Module::forward\n"
      << e_on.summary();

  infer::Engine m_on = infer::compile(*gm.net);
  infer::Engine m_off =
      infer::compile(*gm.net, {.fuse_elementwise = false});
  Tensor z_on = m_on.run(x);
  Tensor z_off = m_off.run(x);
  EXPECT_EQ(z_on.shape(), z_off.shape());
  EXPECT_EQ(max_abs_diff(z_on, z_off), 0.0)
      << "merged lowering: fusion ON vs OFF drifted\n"
      << m_on.summary();

  // Fusion must never appear with the pass disabled.
  EXPECT_EQ(count_fused(e_off), 0) << e_off.summary();
  EXPECT_EQ(count_fused(m_off), 0) << m_off.summary();
  return count_fused(e_on) + count_fused(m_on);
}

TEST(FusionFuzzTest, RandomModelsBitIdenticalFusedAndUnfused) {
  const uint64_t base = testgen::suite_seed(0x77f5a11);
  const int iters =
      testgen::seed_pinned() ? 1 : testgen::iteration_budget(200);
  int64_t fused_total = 0;
  bool saw_mode[4] = {false, false, false, false};
  for (int i = 0; i < iters; ++i) {
    const uint64_t seed = base + static_cast<uint64_t>(i);
    const testgen::GeneratedModel gm = testgen::random_model(seed);
    fused_total += check_sample(seed, gm);
    if (::testing::Test::HasFailure()) {
      // One failing sample is enough; its seed line is already in the trace.
      ADD_FAILURE() << "stopping the sweep after the first failing sample; "
                    << testgen::seed_line(seed);
      return;
    }
    const char* names[4] = {"tt=none", "tt=stt", "tt=ptt", "tt=htt"};
    for (int m = 0; m < 4; ++m) {
      if (gm.desc.find(names[m]) != std::string::npos) saw_mode[m] = true;
    }
  }
  if (!testgen::seed_pinned() && iters >= 100) {
    // The seeded generator must exercise every TT mode across a full sweep,
    // and the pass must have fused real chains.
    EXPECT_TRUE(saw_mode[0] && saw_mode[1] && saw_mode[2] && saw_mode[3])
        << "generator failed to cover all TT modes in " << iters << " samples";
    EXPECT_GT(fused_total, 0) << "fusion never fired across the sweep";
  }
}

}  // namespace
}  // namespace ttsnn
