// Checkpointing tests: save/load round-trips for dense and factorized
// models, and rejection of mismatched architectures and corrupt files.

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "core/factorize.h"
#include "core/models.h"
#include "snn/serialize.h"
#include "tensor/ops.h"

namespace ttsnn {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/ttsnn_ckpt.bin";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(SerializeTest, DenseRoundTripPreservesOutputs) {
  Rng rng(1);
  ModelConfig cfg{.num_classes = 4, .base_width = 8, .timesteps = 2};
  ModulePtr a = make_ms_resnet18(cfg, rng);
  Tensor x = Tensor::uniform({2, 2, 3, 8, 8}, rng);
  a->set_training(false);
  Tensor ya = a->forward(x);

  save_parameters(*a, path_);

  Rng rng2(99);  // different init; load must overwrite everything
  ModulePtr b = make_ms_resnet18(cfg, rng2);
  load_parameters(*b, path_);
  b->set_training(false);
  Tensor yb = b->forward(x);
  EXPECT_LT(max_abs_diff(ya, yb), 1e-7);
}

TEST_F(SerializeTest, FactorizedRoundTrip) {
  Rng rng(2);
  ModelConfig cfg{.num_classes = 4, .base_width = 8, .timesteps = 2};
  FactorizeOptions fopts;
  fopts.use_vbmf = false;
  fopts.rank_fraction = 0.5;

  ModulePtr a = make_ms_resnet18(cfg, rng);
  factorize_network(*a, fopts, rng);
  save_parameters(*a, path_);

  Rng rng2(3);
  ModulePtr b = make_ms_resnet18(cfg, rng2);
  factorize_network(*b, fopts, rng2);
  load_parameters(*b, path_);

  Tensor x = Tensor::uniform({2, 1, 3, 8, 8}, rng);
  a->set_training(false);
  b->set_training(false);
  EXPECT_LT(max_abs_diff(a->forward(x), b->forward(x)), 1e-7);
}

// A checkpoint must carry the BN running statistics (v2 buffer section):
// after training forwards move the EMA off its init values, a fresh model
// must still reproduce eval outputs from the checkpoint alone.
TEST_F(SerializeTest, RoundTripCarriesBatchNormRunningStats) {
  Rng rng(10);
  ModelConfig cfg{.num_classes = 4, .base_width = 8, .timesteps = 2};
  ModulePtr a = make_ms_resnet18(cfg, rng);
  a->set_training(true);
  for (int i = 0; i < 3; ++i) {
    a->forward(Tensor::uniform({2, 2, 3, 8, 8}, rng));
  }
  a->clear_cache();
  a->set_training(false);
  Tensor x = Tensor::uniform({2, 2, 3, 8, 8}, rng);
  Tensor ya = a->forward(x);

  save_parameters(*a, path_);

  Rng rng2(77);
  ModulePtr b = make_ms_resnet18(cfg, rng2);
  load_parameters(*b, path_);
  b->set_training(false);
  EXPECT_EQ(max_abs_diff(ya, b->forward(x)), 0.0);
}

TEST_F(SerializeTest, ArchitectureMismatchThrows) {
  Rng rng(4);
  ModelConfig cfg{.num_classes = 4, .base_width = 8, .timesteps = 2};
  ModulePtr dense = make_ms_resnet18(cfg, rng);
  save_parameters(*dense, path_);

  // A factorized model has different parameters: loading must fail loudly.
  ModulePtr tt = make_ms_resnet18(cfg, rng);
  FactorizeOptions fopts;
  fopts.use_vbmf = false;
  factorize_network(*tt, fopts, rng);
  EXPECT_THROW(load_parameters(*tt, path_), Error);

  // Same family, different width: shape mismatch.
  ModelConfig wide = cfg;
  wide.base_width = 16;
  ModulePtr big = make_ms_resnet18(wide, rng);
  EXPECT_THROW(load_parameters(*big, path_), Error);
}

TEST_F(SerializeTest, CorruptFileThrows) {
  std::ofstream out(path_, std::ios::binary);
  out << "not a checkpoint";
  out.close();
  Rng rng(5);
  ModelConfig cfg{.num_classes = 4, .base_width = 8, .timesteps = 2};
  ModulePtr net = make_ms_resnet18(cfg, rng);
  EXPECT_THROW(load_parameters(*net, path_), Error);
}

TEST_F(SerializeTest, TruncatedFileThrows) {
  Rng rng(6);
  ModelConfig cfg{.num_classes = 4, .base_width = 8, .timesteps = 2};
  ModulePtr net = make_ms_resnet18(cfg, rng);
  save_parameters(*net, path_);
  // Truncate to half.
  std::ifstream in(path_, std::ios::binary | std::ios::ate);
  const auto size = in.tellg();
  in.seekg(0);
  std::string half(static_cast<size_t>(size) / 2, '\0');
  in.read(half.data(), static_cast<std::streamsize>(half.size()));
  in.close();
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out << half;
  out.close();
  EXPECT_THROW(load_parameters(*net, path_), Error);
}

TEST_F(SerializeTest, MissingFileThrows) {
  Rng rng(7);
  ModelConfig cfg{.num_classes = 4, .base_width = 8, .timesteps = 2};
  ModulePtr net = make_ms_resnet18(cfg, rng);
  EXPECT_THROW(load_parameters(*net, "/nonexistent/path.bin"), Error);
}

}  // namespace
}  // namespace ttsnn
