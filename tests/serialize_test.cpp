// Checkpointing tests: save/load round-trips for dense and factorized
// models, rejection of mismatched architectures and corrupt files, and
// crash safety — save_parameters publishes via tmp + atomic rename, so a
// crash (injected with failpoints) at ANY point of a save leaves the
// previously published checkpoint intact and loadable.

#include <cstdio>
#include <fstream>
#include <limits>

#include <gtest/gtest.h>

#include "core/factorize.h"
#include "core/models.h"
#include "snn/serialize.h"
#include "tensor/ops.h"
#include "util/failpoint.h"

namespace ttsnn {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/ttsnn_ckpt.bin";
  void TearDown() override {
    failpoint::disarm_all();
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
};

TEST_F(SerializeTest, DenseRoundTripPreservesOutputs) {
  Rng rng(1);
  ModelConfig cfg{.num_classes = 4, .base_width = 8, .timesteps = 2};
  ModulePtr a = make_ms_resnet18(cfg, rng);
  Tensor x = Tensor::uniform({2, 2, 3, 8, 8}, rng);
  a->set_training(false);
  Tensor ya = a->forward(x);

  save_parameters(*a, path_);

  Rng rng2(99);  // different init; load must overwrite everything
  ModulePtr b = make_ms_resnet18(cfg, rng2);
  load_parameters(*b, path_);
  b->set_training(false);
  Tensor yb = b->forward(x);
  EXPECT_LT(max_abs_diff(ya, yb), 1e-7);
}

TEST_F(SerializeTest, FactorizedRoundTrip) {
  Rng rng(2);
  ModelConfig cfg{.num_classes = 4, .base_width = 8, .timesteps = 2};
  FactorizeOptions fopts;
  fopts.use_vbmf = false;
  fopts.rank_fraction = 0.5;

  ModulePtr a = make_ms_resnet18(cfg, rng);
  factorize_network(*a, fopts, rng);
  save_parameters(*a, path_);

  Rng rng2(3);
  ModulePtr b = make_ms_resnet18(cfg, rng2);
  factorize_network(*b, fopts, rng2);
  load_parameters(*b, path_);

  Tensor x = Tensor::uniform({2, 1, 3, 8, 8}, rng);
  a->set_training(false);
  b->set_training(false);
  EXPECT_LT(max_abs_diff(a->forward(x), b->forward(x)), 1e-7);
}

// A checkpoint must carry the BN running statistics (v2 buffer section):
// after training forwards move the EMA off its init values, a fresh model
// must still reproduce eval outputs from the checkpoint alone.
TEST_F(SerializeTest, RoundTripCarriesBatchNormRunningStats) {
  Rng rng(10);
  ModelConfig cfg{.num_classes = 4, .base_width = 8, .timesteps = 2};
  ModulePtr a = make_ms_resnet18(cfg, rng);
  a->set_training(true);
  for (int i = 0; i < 3; ++i) {
    a->forward(Tensor::uniform({2, 2, 3, 8, 8}, rng));
  }
  a->clear_cache();
  a->set_training(false);
  Tensor x = Tensor::uniform({2, 2, 3, 8, 8}, rng);
  Tensor ya = a->forward(x);

  save_parameters(*a, path_);

  Rng rng2(77);
  ModulePtr b = make_ms_resnet18(cfg, rng2);
  load_parameters(*b, path_);
  b->set_training(false);
  EXPECT_EQ(max_abs_diff(ya, b->forward(x)), 0.0);
}

TEST_F(SerializeTest, ArchitectureMismatchThrows) {
  Rng rng(4);
  ModelConfig cfg{.num_classes = 4, .base_width = 8, .timesteps = 2};
  ModulePtr dense = make_ms_resnet18(cfg, rng);
  save_parameters(*dense, path_);

  // A factorized model has different parameters: loading must fail loudly.
  ModulePtr tt = make_ms_resnet18(cfg, rng);
  FactorizeOptions fopts;
  fopts.use_vbmf = false;
  factorize_network(*tt, fopts, rng);
  EXPECT_THROW(load_parameters(*tt, path_), Error);

  // Same family, different width: shape mismatch.
  ModelConfig wide = cfg;
  wide.base_width = 16;
  ModulePtr big = make_ms_resnet18(wide, rng);
  EXPECT_THROW(load_parameters(*big, path_), Error);
}

TEST_F(SerializeTest, CorruptFileThrows) {
  std::ofstream out(path_, std::ios::binary);
  out << "not a checkpoint";
  out.close();
  Rng rng(5);
  ModelConfig cfg{.num_classes = 4, .base_width = 8, .timesteps = 2};
  ModulePtr net = make_ms_resnet18(cfg, rng);
  EXPECT_THROW(load_parameters(*net, path_), Error);
}

TEST_F(SerializeTest, TruncatedFileThrows) {
  Rng rng(6);
  ModelConfig cfg{.num_classes = 4, .base_width = 8, .timesteps = 2};
  ModulePtr net = make_ms_resnet18(cfg, rng);
  save_parameters(*net, path_);
  // Truncate to half.
  std::ifstream in(path_, std::ios::binary | std::ios::ate);
  const auto size = in.tellg();
  in.seekg(0);
  std::string half(static_cast<size_t>(size) / 2, '\0');
  in.read(half.data(), static_cast<std::streamsize>(half.size()));
  in.close();
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out << half;
  out.close();
  EXPECT_THROW(load_parameters(*net, path_), Error);
}

TEST_F(SerializeTest, MissingFileThrows) {
  Rng rng(7);
  ModelConfig cfg{.num_classes = 4, .base_width = 8, .timesteps = 2};
  ModulePtr net = make_ms_resnet18(cfg, rng);
  EXPECT_THROW(load_parameters(*net, "/nonexistent/path.bin"), Error);
}

// A dim count no real tensor has (from a garbage or bit-flipped record) must
// reject as corrupt BEFORE the loader sizes a shape allocation by it.
TEST_F(SerializeTest, GarbageDimCountRejectedBeforeAllocation) {
  Rng rng(11);
  ModelConfig cfg{.num_classes = 4, .base_width = 8, .timesteps = 2};
  ModulePtr net = make_ms_resnet18(cfg, rng);
  save_parameters(*net, path_);
  // Overwrite the first tensor's dim-count word with garbage. Layout:
  // magic u64, count u64, name-len u64, name bytes, dims u64 <- here.
  std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
  f.seekg(16);
  uint64_t name_len = 0;
  f.read(reinterpret_cast<char*>(&name_len), sizeof(name_len));
  f.seekp(static_cast<std::streamoff>(24 + name_len));
  const uint64_t garbage = ~0ULL;
  f.write(reinterpret_cast<const char*>(&garbage), sizeof(garbage));
  f.close();
  try {
    load_parameters(*net, path_);
    FAIL() << "garbage dim count was accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("dims"), std::string::npos)
        << "rejection not labeled as a dim-count problem: " << e.what();
  }
}

// Crash mid-write (injected: checkpoint.write fires once, i.e. on the first
// tensor of the SECOND save): the previously published checkpoint must stay
// intact and loadable, and no half-written file may take its place.
TEST_F(SerializeTest, CrashMidWriteKeepsPreviousCheckpointLoadable) {
  Rng rng(12);
  ModelConfig cfg{.num_classes = 4, .base_width = 8, .timesteps = 2};
  ModulePtr a = make_ms_resnet18(cfg, rng);
  a->set_training(false);
  Tensor x = Tensor::uniform({2, 2, 3, 8, 8}, rng);
  Tensor ya = a->forward(x);
  save_parameters(*a, path_);  // the published good checkpoint

  // Mutate the model, then crash while checkpointing the new state.
  Rng rng2(13);
  ModulePtr b = make_ms_resnet18(cfg, rng2);
  failpoint::arm("checkpoint.write", "once");
  EXPECT_THROW(save_parameters(*b, path_), failpoint::FailpointError);
  failpoint::disarm("checkpoint.write");

  // The OLD checkpoint still loads and reproduces the old outputs; the
  // aborted save left no tmp litter behind.
  std::ifstream tmp(path_ + ".tmp");
  EXPECT_FALSE(tmp.good()) << "aborted save left a half-written tmp file";
  ModulePtr c = make_ms_resnet18(cfg, rng2);
  load_parameters(*c, path_);
  c->set_training(false);
  EXPECT_EQ(max_abs_diff(ya, c->forward(x)), 0.0);
}

// Crash in the gap between a COMPLETE tmp write and the rename: same
// guarantee — the destination is untouched until the atomic publish.
TEST_F(SerializeTest, CrashBeforeRenameKeepsPreviousCheckpointLoadable) {
  Rng rng(14);
  ModelConfig cfg{.num_classes = 4, .base_width = 8, .timesteps = 2};
  ModulePtr a = make_ms_resnet18(cfg, rng);
  a->set_training(false);
  Tensor x = Tensor::uniform({2, 2, 3, 8, 8}, rng);
  Tensor ya = a->forward(x);
  save_parameters(*a, path_);

  Rng rng2(15);
  ModulePtr b = make_ms_resnet18(cfg, rng2);
  failpoint::arm("checkpoint.rename", "once");
  EXPECT_THROW(save_parameters(*b, path_), failpoint::FailpointError);
  failpoint::disarm("checkpoint.rename");

  ModulePtr c = make_ms_resnet18(cfg, rng2);
  load_parameters(*c, path_);
  c->set_training(false);
  EXPECT_EQ(max_abs_diff(ya, c->forward(x)), 0.0);

  // And with no fault armed, the same save publishes cleanly over the old
  // file (rename replaces): the recovery path needs no manual cleanup.
  b->set_training(false);
  Tensor yb = b->forward(x);
  save_parameters(*b, path_);
  ModulePtr d = make_ms_resnet18(cfg, rng);
  load_parameters(*d, path_);
  d->set_training(false);
  EXPECT_EQ(max_abs_diff(yb, d->forward(x)), 0.0);
}

// A checkpoint carrying a non-finite BatchNorm running variance must be
// rejected at load with the buffer named — those values feed BN folding and
// int8 scale calibration, where a NaN/Inf would silently poison every folded
// weight instead of failing here.
TEST_F(SerializeTest, NonFiniteRunningVarianceRejectedAtLoad) {
  Rng rng(18);
  ModelConfig cfg{.num_classes = 4, .base_width = 8, .timesteps = 2};
  ModulePtr a = make_ms_resnet18(cfg, rng);
  BufferRef* var = nullptr;
  std::vector<BufferRef> bufs = a->buffers();
  for (BufferRef& b : bufs) {
    if (b.name.find("running_var") != std::string::npos) {
      var = &b;
      break;
    }
  }
  ASSERT_NE(var, nullptr) << "model exposes no running_var buffer";

  for (const float poison : {std::numeric_limits<float>::quiet_NaN(),
                             std::numeric_limits<float>::infinity()}) {
    var->value->data()[1] = poison;
    save_parameters(*a, path_);
    ModulePtr fresh = make_ms_resnet18(cfg, rng);
    try {
      load_parameters(*fresh, path_);
      FAIL() << "non-finite running variance was accepted";
    } catch (const Error& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("running variance"), std::string::npos) << what;
      EXPECT_NE(what.find(var->name), std::string::npos)
          << "rejection does not name the poisoned buffer: " << what;
    }
  }

  // Restored to a finite value, the same checkpoint loads again.
  var->value->data()[1] = 1.0F;
  save_parameters(*a, path_);
  ModulePtr fresh = make_ms_resnet18(cfg, rng);
  load_parameters(*fresh, path_);
}

// checkpoint.read stands in for a vanished file / dead filesystem at load
// time: upstream retry logic sees a labeled, typed error.
TEST_F(SerializeTest, InjectedReadFaultSurfacesAsTypedError) {
  Rng rng(16);
  ModelConfig cfg{.num_classes = 4, .base_width = 8, .timesteps = 2};
  ModulePtr net = make_ms_resnet18(cfg, rng);
  save_parameters(*net, path_);
  failpoint::arm("checkpoint.read", "once");
  EXPECT_THROW(load_parameters(*net, path_), failpoint::FailpointError);
  // The fault was transient (once): the very next load succeeds.
  load_parameters(*net, path_);
}

}  // namespace
}  // namespace ttsnn
