// SpikePlane build semantics and the sparse-vs-dense GEMM identity the
// kernel-selection layer relies on: at every spike density the gathered-
// accumulation path must return the same BITS as the naive dense kernel,
// because gemm() switches between them based on a runtime sample.

#include "tensor/spike_plane.h"

#include <cstring>

#include <gtest/gtest.h>

#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace ttsnn {
namespace {

TEST(SpikePlaneTest, BuildIndexesBinaryMatrix) {
  // 3x4: rows with 2, 0, 3 spikes.
  const float data[] = {1, 0, 0, 1,
                        0, 0, 0, 0,
                        1, 1, 0, 1};
  SpikePlane plane;
  ASSERT_TRUE(plane.build(data, 3, 4));
  EXPECT_EQ(plane.rows, 3);
  EXPECT_EQ(plane.cols, 4);
  EXPECT_EQ(plane.nnz(), 5);
  ASSERT_EQ(plane.row_ptr.size(), 4U);
  EXPECT_EQ(plane.row_ptr[0], 0);
  EXPECT_EQ(plane.row_ptr[1], 2);
  EXPECT_EQ(plane.row_ptr[2], 2);
  EXPECT_EQ(plane.row_ptr[3], 5);
  const int32_t expect_cols[] = {0, 3, 0, 1, 3};
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(plane.col_idx[i], expect_cols[i]);
  EXPECT_NEAR(plane.density(), 5.0 / 12.0, 1e-12);
}

TEST(SpikePlaneTest, BuildRejectsNonBinary) {
  const float data[] = {1, 0, 0.5F, 1};
  SpikePlane plane;
  EXPECT_FALSE(plane.build(data, 2, 2));
  EXPECT_EQ(plane.rows, 0);
  EXPECT_EQ(plane.nnz(), 0);
}

TEST(SpikePlaneTest, BuildRejectsAboveMaxDensity) {
  Rng rng(3);
  Tensor dense_spikes = Tensor::bernoulli({32, 32}, rng, 0.9F);
  SpikePlane plane;
  EXPECT_FALSE(plane.build(dense_spikes.data(), 32, 32, 0.25));
  // Unlimited build of the same matrix succeeds.
  EXPECT_TRUE(plane.build(dense_spikes.data(), 32, 32));
}

Tensor run_gemm(GemmKernel kernel, bool trans_b, int64_t m, int64_t n,
                int64_t k, float alpha, const Tensor& a, const Tensor& b,
                float beta, const Tensor& c0) {
  GemmKernelGuard guard(kernel);
  GemmThreadsGuard threads(1);
  Tensor c = c0.clone();
  gemm(false, trans_b, m, n, k, alpha, a.data(), b.data(), beta, c.data());
  return c;
}

bool bit_identical(const Tensor& x, const Tensor& y) {
  return x.numel() == y.numel() &&
         std::memcmp(x.data(), y.data(),
                     static_cast<size_t>(x.numel()) * sizeof(float)) == 0;
}

// The PR-3 acceptance densities: empty, ultra-sparse, paper-typical, full.
const float kDensities[] = {0.0F, 0.03F, 0.3F, 1.0F};

TEST(SpikePlaneGemmTest, SparseMatchesNaiveBitwiseAcrossDensities) {
  const int64_t shapes[][3] = {{4, 9, 16}, {17, 33, 65}, {64, 100, 128}};
  Rng rng(11);
  for (const auto& s : shapes) {
    const int64_t m = s[0], n = s[1], k = s[2];
    for (float density : kDensities) {
      for (bool trans_b : {false, true}) {
        Tensor a = Tensor::randn({m, k}, rng);
        Tensor b = trans_b ? Tensor::bernoulli({n, k}, rng, density)
                           : Tensor::bernoulli({k, n}, rng, density);
        // beta=1 with a non-zero C exercises the accumulate path the dW
        // GEMMs use; alpha != 1 exercises the scaling.
        Tensor c0 = Tensor::randn({m, n}, rng);
        Tensor ref =
            run_gemm(GemmKernel::kNaive, trans_b, m, n, k, 0.5F, a, b, 1.0F, c0);
        Tensor out =
            run_gemm(GemmKernel::kSparse, trans_b, m, n, k, 0.5F, a, b, 1.0F, c0);
        EXPECT_TRUE(bit_identical(ref, out))
            << (trans_b ? "nt" : "nn") << " m=" << m << " n=" << n
            << " k=" << k << " density=" << density;
      }
    }
  }
}

TEST(SpikePlaneGemmTest, SparsePinFallsBackOnNonBinaryB) {
  Rng rng(13);
  Tensor a = Tensor::randn({8, 32}, rng);
  Tensor b = Tensor::randn({32, 24}, rng);  // not binary: build must bail
  Tensor c0 = Tensor::zeros({8, 24});
  Tensor ref = run_gemm(GemmKernel::kNaive, false, 8, 24, 32, 1.0F, a, b,
                        0.0F, c0);
  Tensor out = run_gemm(GemmKernel::kSparse, false, 8, 24, 32, 1.0F, a, b,
                        0.0F, c0);
  EXPECT_TRUE(bit_identical(ref, out));
}

TEST(SpikePlaneGemmTest, AutoSelectionStaysBitIdenticalOnSpikes) {
  // A realistic conv-forward shape: dense weights x binary spike columns,
  // large enough that kAuto's sparse heuristic fires. Whatever path auto
  // picks must agree with the pinned naive kernel bit-for-bit.
  Rng rng(17);
  const int64_t m = 64, n = 256, k = 288;
  Tensor a = Tensor::randn({m, k}, rng);
  for (float density : {0.05F, 0.2F}) {
    Tensor b = Tensor::bernoulli({k, n}, rng, density);
    Tensor c0 = Tensor::zeros({m, n});
    Tensor ref =
        run_gemm(GemmKernel::kNaive, false, m, n, k, 1.0F, a, b, 0.0F, c0);
    Tensor out =
        run_gemm(GemmKernel::kAuto, false, m, n, k, 1.0F, a, b, 0.0F, c0);
    EXPECT_TRUE(bit_identical(ref, out)) << "density=" << density;
  }
}

TEST(SpikePlaneGemmTest, SparseMatchesAcrossThreadCounts) {
  Rng rng(19);
  const int64_t m = 32, n = 64, k = 128;
  Tensor a = Tensor::randn({m, k}, rng);
  Tensor b = Tensor::bernoulli({k, n}, rng, 0.1F);
  Tensor c0 = Tensor::zeros({m, n});
  Tensor ref = run_gemm(GemmKernel::kSparse, false, m, n, k, 1.0F, a, b,
                        0.0F, c0);
  for (int threads : {2, 4}) {
    GemmThreadsGuard tguard(threads);
    GemmKernelGuard kguard(GemmKernel::kSparse);
    Tensor c = c0.clone();
    gemm(false, false, m, n, k, 1.0F, a.data(), b.data(), 0.0F, c.data());
    EXPECT_TRUE(bit_identical(ref, c)) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace ttsnn
