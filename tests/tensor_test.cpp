// Unit tests for the dense tensor substrate: construction, shape mechanics,
// arithmetic, reductions, permutation, GEMM, and im2col/col2im adjointness.

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "tensor/gemm.h"
#include "tensor/im2col.h"
#include "tensor/ops.h"
#include "tensor/random.h"
#include "tensor/tensor.h"
#include "util/common.h"

namespace ttsnn {
namespace {

TEST(TensorTest, DefaultConstructedIsUndefined) {
  Tensor t;
  EXPECT_FALSE(t.defined());
  EXPECT_EQ(t.numel(), 0);
  EXPECT_EQ(t.dim(), 0);
}

TEST(TensorTest, ZerosHasShapeAndZeroData) {
  Tensor t = Tensor::zeros({2, 3, 4});
  EXPECT_EQ(t.numel(), 24);
  EXPECT_EQ(t.dim(), 3);
  EXPECT_EQ(t.size(0), 2);
  EXPECT_EQ(t.size(-1), 4);
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0F);
}

TEST(TensorTest, FullAndOnes) {
  Tensor t = Tensor::full({5}, 2.5F);
  EXPECT_FLOAT_EQ(t[4], 2.5F);
  EXPECT_DOUBLE_EQ(Tensor::ones({3, 3}).sum(), 9.0);
}

TEST(TensorTest, ArangeProducesSequence) {
  Tensor t = Tensor::arange(5);
  for (int64_t i = 0; i < 5; ++i) EXPECT_FLOAT_EQ(t[i], static_cast<float>(i));
}

TEST(TensorTest, FromVectorChecksSize) {
  EXPECT_NO_THROW(Tensor({2, 2}, {1, 2, 3, 4}));
  EXPECT_THROW(Tensor({2, 2}, {1, 2, 3}), Error);
}

TEST(TensorTest, AtMultiDimensionalIndexing) {
  Tensor t({2, 3}, {0, 1, 2, 3, 4, 5});
  EXPECT_FLOAT_EQ(t.at({0, 0}), 0.0F);
  EXPECT_FLOAT_EQ(t.at({1, 2}), 5.0F);
  t.at({1, 0}) = 9.0F;
  EXPECT_FLOAT_EQ(t[3], 9.0F);
  EXPECT_THROW(t.at({2, 0}), Error);
  EXPECT_THROW(t.at({0}), Error);
}

TEST(TensorTest, CopyIsShallowCloneIsDeep) {
  Tensor a = Tensor::zeros({4});
  Tensor shallow = a;
  Tensor deep = a.clone();
  a[0] = 7.0F;
  EXPECT_FLOAT_EQ(shallow[0], 7.0F);
  EXPECT_FLOAT_EQ(deep[0], 0.0F);
}

TEST(TensorTest, ReshapeSharesStorage) {
  Tensor a = Tensor::arange(6);
  Tensor b = a.reshape({2, 3});
  b.at({0, 1}) = 42.0F;
  EXPECT_FLOAT_EQ(a[1], 42.0F);
}

TEST(TensorTest, ReshapeInfersMinusOne) {
  Tensor a = Tensor::arange(12);
  Tensor b = a.reshape({3, -1});
  EXPECT_EQ(b.size(1), 4);
  EXPECT_THROW(a.reshape({5, -1}), Error);
  EXPECT_THROW(a.reshape({-1, -1}), Error);
}

TEST(TensorTest, ReshapeRejectsNumelChange) {
  EXPECT_THROW(Tensor::arange(6).reshape({4, 2}), Error);
}

TEST(TensorTest, PermuteTransposesData) {
  Tensor a({2, 3}, {0, 1, 2, 3, 4, 5});
  Tensor b = a.permute({1, 0});
  EXPECT_EQ(b.shape(), (Shape{3, 2}));
  EXPECT_FLOAT_EQ(b.at({0, 1}), 3.0F);
  EXPECT_FLOAT_EQ(b.at({2, 0}), 2.0F);
}

TEST(TensorTest, PermuteRoundTripIdentity) {
  Rng rng(1);
  Tensor a = Tensor::randn({2, 3, 4, 5}, rng);
  Tensor b = a.permute({3, 1, 0, 2}).permute({2, 1, 3, 0});
  EXPECT_EQ(b.shape(), a.shape());
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 0.0);
}

TEST(TensorTest, Slice0CopiesRows) {
  Tensor a = Tensor::arange(12).reshape({4, 3});
  Tensor s = a.slice0(1, 3);
  EXPECT_EQ(s.shape(), (Shape{2, 3}));
  EXPECT_FLOAT_EQ(s.at({0, 0}), 3.0F);
  EXPECT_FLOAT_EQ(s.at({1, 2}), 8.0F);
  EXPECT_THROW(a.slice0(3, 5), Error);
}

TEST(TensorTest, InPlaceArithmetic) {
  Tensor a({3}, {1, 2, 3});
  Tensor b({3}, {10, 20, 30});
  a.add_(b);
  EXPECT_FLOAT_EQ(a[2], 33.0F);
  a.sub_(b);
  EXPECT_FLOAT_EQ(a[2], 3.0F);
  a.mul_(b);
  EXPECT_FLOAT_EQ(a[1], 40.0F);
  a.mul_scalar_(0.5F);
  EXPECT_FLOAT_EQ(a[1], 20.0F);
  a.add_scalar_(1.0F);
  EXPECT_FLOAT_EQ(a[0], 6.0F);
  a.axpy_(2.0F, b);
  EXPECT_FLOAT_EQ(a[0], 26.0F);
  a.clamp_(0.0F, 25.0F);
  EXPECT_FLOAT_EQ(a[0], 25.0F);
}

TEST(TensorTest, ShapeMismatchThrows) {
  Tensor a = Tensor::zeros({3});
  Tensor b = Tensor::zeros({4});
  EXPECT_THROW(a.add_(b), Error);
  EXPECT_THROW(a.mul_(b), Error);
}

TEST(TensorTest, Reductions) {
  Tensor a({4}, {-1, 2, -3, 4});
  EXPECT_DOUBLE_EQ(a.sum(), 2.0);
  EXPECT_DOUBLE_EQ(a.mean(), 0.5);
  EXPECT_FLOAT_EQ(a.max_value(), 4.0F);
  EXPECT_FLOAT_EQ(a.min_value(), -3.0F);
  EXPECT_EQ(a.argmax(), 3);
  EXPECT_NEAR(a.norm(), std::sqrt(30.0), 1e-6);
}

TEST(TensorTest, DensityCountsNonZeros) {
  Tensor a({4}, {0, 1, 0, 1});
  EXPECT_DOUBLE_EQ(a.density(), 0.5);
}

TEST(TensorTest, RandnStatistics) {
  Rng rng(7);
  Tensor t = Tensor::randn({10000}, rng);
  EXPECT_NEAR(t.mean(), 0.0, 0.05);
  const double var = t.norm() * t.norm() / 10000.0;
  EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(TensorTest, BernoulliDensityMatchesP) {
  Rng rng(7);
  Tensor t = Tensor::bernoulli({10000}, rng, 0.3F);
  EXPECT_NEAR(t.density(), 0.3, 0.03);
}

TEST(OpsTest, AddSubMulScale) {
  Tensor a({2}, {1, 2});
  Tensor b({2}, {3, 4});
  EXPECT_FLOAT_EQ(add(a, b)[1], 6.0F);
  EXPECT_FLOAT_EQ(sub(a, b)[0], -2.0F);
  EXPECT_FLOAT_EQ(mul(a, b)[1], 8.0F);
  EXPECT_FLOAT_EQ(scale(a, 3.0F)[0], 3.0F);
}

TEST(OpsTest, ReluAndMask) {
  Tensor a({4}, {-1, 0, 2, -3});
  Tensor r = relu(a);
  EXPECT_FLOAT_EQ(r[0], 0.0F);
  EXPECT_FLOAT_EQ(r[2], 2.0F);
  Tensor m = relu_mask(a);
  EXPECT_FLOAT_EQ(m[1], 0.0F);
  EXPECT_FLOAT_EQ(m[2], 1.0F);
}

TEST(OpsTest, MatmulAgainstHandComputed) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at({0, 0}), 58.0F);
  EXPECT_FLOAT_EQ(c.at({0, 1}), 64.0F);
  EXPECT_FLOAT_EQ(c.at({1, 0}), 139.0F);
  EXPECT_FLOAT_EQ(c.at({1, 1}), 154.0F);
}

TEST(OpsTest, MatmulVariantsAgreeWithExplicitTranspose) {
  Rng rng(3);
  Tensor a = Tensor::randn({4, 6}, rng);
  Tensor b = Tensor::randn({4, 5}, rng);
  // a^T b via matmul_tn vs explicit transpose.
  Tensor ref = matmul(a.transpose2d(), b);
  EXPECT_LT(max_abs_diff(matmul_tn(a, b), ref), 1e-5);
  Tensor c = Tensor::randn({5, 6}, rng);
  Tensor ref2 = matmul(a, c.transpose2d());
  EXPECT_LT(max_abs_diff(matmul_nt(a, c), ref2), 1e-5);
}

TEST(OpsTest, GemmBetaAccumulates) {
  Tensor a({1, 2}, {1, 1});
  Tensor b({2, 1}, {2, 3});
  Tensor c({1, 1}, {10});
  gemm(false, false, 1, 1, 2, 1.0F, a.data(), b.data(), 1.0F, c.data());
  EXPECT_FLOAT_EQ(c[0], 15.0F);
  gemm(false, false, 1, 1, 2, 1.0F, a.data(), b.data(), 0.0F, c.data());
  EXPECT_FLOAT_EQ(c[0], 5.0F);
}

TEST(OpsTest, GemmParallelMatchesSerial) {
  Rng rng(11);
  Tensor a = Tensor::randn({64, 48}, rng);
  Tensor b = Tensor::randn({48, 40}, rng);
  Tensor serial;
  {
    GemmThreadsGuard guard(1);
    serial = matmul(a, b);
  }
  Tensor parallel;
  {
    GemmThreadsGuard guard(2);
    parallel = matmul(a, b);
  }
  EXPECT_EQ(gemm_threads(), 1);  // guards restored the default
  EXPECT_LT(max_abs_diff(serial, parallel), 1e-5);
}

TEST(OpsTest, GemmThreadsGuardRestoresOnException) {
  const int before = gemm_threads();
  try {
    GemmThreadsGuard guard(4);
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(gemm_threads(), before);
}

TEST(OpsTest, GemmNullOutputFailsLoudly) {
  Tensor a = Tensor::ones({2, 3});
  Tensor b = Tensor::ones({3, 2});
  EXPECT_THROW(
      gemm(false, false, 2, 2, 3, 1.0F, a.data(), b.data(), 0.0F, nullptr),
      Error);
}

TEST(OpsTest, GemmNullInputsFailLoudly) {
  Tensor b = Tensor::ones({3, 2});
  Tensor c = Tensor::zeros({2, 2});
  EXPECT_THROW(
      gemm(false, false, 2, 2, 3, 1.0F, nullptr, b.data(), 0.0F, c.data()),
      Error);
  Tensor a = Tensor::ones({2, 3});
  EXPECT_THROW(
      gemm(false, false, 2, 2, 3, 1.0F, a.data(), nullptr, 0.0F, c.data()),
      Error);
  // Degenerate shapes never dereference the pointers, so null stays legal.
  EXPECT_NO_THROW(
      gemm(false, false, 0, 0, 0, 1.0F, nullptr, nullptr, 0.0F, nullptr));
  // alpha == 0 only scales C; A and B may be null.
  EXPECT_NO_THROW(
      gemm(false, false, 2, 2, 3, 0.0F, nullptr, nullptr, 0.5F, c.data()));
}

TEST(RngTest, IndexRejectsNonPositiveRange) {
  Rng rng(7);
  EXPECT_THROW(rng.index(0), Error);
  EXPECT_THROW(rng.index(-3), Error);
  const int64_t v = rng.index(5);  // still usable after the failed calls
  EXPECT_GE(v, 0);
  EXPECT_LT(v, 5);
}

TEST(OpsTest, SoftmaxRowsSumToOne) {
  Rng rng(5);
  Tensor logits = Tensor::randn({6, 10}, rng);
  Tensor p = softmax(logits);
  for (int64_t i = 0; i < 6; ++i) {
    double s = 0.0;
    for (int64_t j = 0; j < 10; ++j) s += p.at({i, j});
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
}

TEST(OpsTest, LogSoftmaxShiftInvariant) {
  Tensor a({1, 3}, {1, 2, 3});
  Tensor b({1, 3}, {101, 102, 103});
  EXPECT_LT(max_abs_diff(log_softmax(a), log_softmax(b)), 1e-4);
}

TEST(OpsTest, ArgmaxRows) {
  Tensor logits({2, 3}, {0, 5, 1, 9, 2, 3});
  auto idx = argmax_rows(logits);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 0);
}

TEST(OpsTest, ChannelBiasBroadcasts) {
  Tensor x = Tensor::zeros({1, 2, 2, 2});
  Tensor bias({2}, {1, 2});
  Tensor y = add_channel_bias(x, bias);
  EXPECT_FLOAT_EQ(y.at({0, 0, 1, 1}), 1.0F);
  EXPECT_FLOAT_EQ(y.at({0, 1, 0, 0}), 2.0F);
}

TEST(OpsTest, SumNhwPerChannel) {
  Tensor x = Tensor::ones({2, 3, 2, 2});
  Tensor s = sum_nhw(x);
  EXPECT_EQ(s.shape(), (Shape{3}));
  EXPECT_FLOAT_EQ(s[0], 8.0F);
}

TEST(OpsTest, GlobalAvgPoolAndBackward) {
  Tensor x({1, 1, 2, 2}, {1, 2, 3, 4});
  Tensor y = global_avg_pool(x);
  EXPECT_FLOAT_EQ(y[0], 2.5F);
  Tensor g({1, 1}, {4.0F});
  Tensor gx = global_avg_pool_backward(g, 2, 2);
  EXPECT_FLOAT_EQ(gx.at({0, 0, 1, 1}), 1.0F);
}

TEST(OpsTest, Cat0Concatenates) {
  Tensor a = Tensor::ones({2, 3});
  Tensor b = Tensor::zeros({1, 3});
  Tensor c = cat0({a, b});
  EXPECT_EQ(c.shape(), (Shape{3, 3}));
  EXPECT_FLOAT_EQ(c.at({2, 0}), 0.0F);
}

TEST(Im2ColTest, IdentityKernelReproducesImage) {
  ConvGeometry g{.in_channels = 2, .in_h = 3, .in_w = 3};
  Rng rng(2);
  Tensor img = Tensor::randn({2, 3, 3}, rng);
  Tensor col({g.col_rows(), g.col_cols()});
  im2col(img.data(), g, col.data());
  EXPECT_LT(max_abs_diff(col.reshape({2, 3, 3}), img), 1e-7);
}

TEST(Im2ColTest, PaddingProducesZeroBorder) {
  ConvGeometry g{.in_channels = 1, .in_h = 2, .in_w = 2,
                 .kernel_h = 3, .kernel_w = 3, .pad_h = 1, .pad_w = 1};
  Tensor img({1, 2, 2}, {1, 2, 3, 4});
  Tensor col({g.col_rows(), g.col_cols()});
  im2col(img.data(), g, col.data());
  // kernel offset (0,0) at output (0,0) looks at input (-1,-1) -> 0.
  EXPECT_FLOAT_EQ(col.at({0, 0}), 0.0F);
  // kernel center (1,1) at output (0,0) is input (0,0) = 1.
  EXPECT_FLOAT_EQ(col.at({4, 0}), 1.0F);
}

TEST(Im2ColTest, StrideSkipsPositions) {
  ConvGeometry g{.in_channels = 1, .in_h = 4, .in_w = 4,
                 .kernel_h = 2, .kernel_w = 2, .stride_h = 2, .stride_w = 2};
  EXPECT_EQ(g.out_h(), 2);
  EXPECT_EQ(g.out_w(), 2);
  Tensor img = Tensor::arange(16).reshape({1, 4, 4});
  Tensor col({g.col_rows(), g.col_cols()});
  im2col(img.data(), g, col.data());
  // top-left patch starts at 0, next patch to the right starts at 2.
  EXPECT_FLOAT_EQ(col.at({0, 0}), 0.0F);
  EXPECT_FLOAT_EQ(col.at({0, 1}), 2.0F);
  EXPECT_FLOAT_EQ(col.at({0, 2}), 8.0F);
}

// col2im is the adjoint of im2col: <im2col(x), y> == <x, col2im(y)>.
TEST(Im2ColTest, Col2ImIsAdjointOfIm2Col) {
  ConvGeometry g{.in_channels = 3, .in_h = 5, .in_w = 4,
                 .kernel_h = 3, .kernel_w = 1, .stride_h = 2, .stride_w = 1,
                 .pad_h = 1, .pad_w = 0};
  Rng rng(9);
  Tensor x = Tensor::randn({g.in_channels, g.in_h, g.in_w}, rng);
  Tensor y = Tensor::randn({g.col_rows(), g.col_cols()}, rng);
  Tensor col({g.col_rows(), g.col_cols()});
  im2col(x.data(), g, col.data());
  Tensor back = Tensor::zeros({g.in_channels, g.in_h, g.in_w});
  col2im(y.data(), g, back.data());
  double lhs = 0.0, rhs = 0.0;
  for (int64_t i = 0; i < col.numel(); ++i) lhs += col[i] * y[i];
  for (int64_t i = 0; i < x.numel(); ++i) rhs += x[i] * back[i];
  EXPECT_NEAR(lhs, rhs, 1e-3 * std::max(1.0, std::fabs(lhs)));
}

TEST(OpsTest, ExpAndSqrtElementwise) {
  Tensor a({3}, {0.0F, 1.0F, 2.0F});
  Tensor e = exp(a);
  EXPECT_FLOAT_EQ(e[0], 1.0F);
  EXPECT_NEAR(e[1], 2.71828F, 1e-4);
  Tensor b({3}, {0.0F, 4.0F, 9.0F});
  Tensor s = sqrt(b);
  EXPECT_FLOAT_EQ(s[1], 2.0F);
  EXPECT_FLOAT_EQ(s[2], 3.0F);
}

TEST(TensorTest, ToStringShowsShapeAndTruncates) {
  Tensor t = Tensor::arange(100);
  const std::string s = t.to_string(4);
  EXPECT_NE(s.find("[100]"), std::string::npos);
  EXPECT_NE(s.find("..."), std::string::npos);
  EXPECT_EQ(Tensor().to_string(), "Tensor(undefined)");
}

TEST(TensorTest, ShapeStrFormatting) {
  EXPECT_EQ(shape_str({2, 3, 4}), "[2, 3, 4]");
  EXPECT_EQ(shape_str({}), "[]");
}

TEST(OpsTest, GemmThreadSettingValidated) {
  EXPECT_THROW(set_gemm_threads(0), Error);
  set_gemm_threads(2);
  EXPECT_EQ(gemm_threads(), 2);
  set_gemm_threads(1);
}

TEST(TensorTest, UndefinedTensorOperationsThrow) {
  Tensor t;
  EXPECT_THROW(t.data(), Error);
  EXPECT_THROW(t.fill_(1.0F), Error);
  EXPECT_THROW(t.reshape({1}), Error);
}

TEST(RandomTest, KaimingVarianceMatchesFanIn) {
  Rng rng(21);
  const int64_t fan_in = 64;
  Tensor w = kaiming_normal({20000}, fan_in, rng);
  const double var = w.norm() * w.norm() / 20000.0;
  EXPECT_NEAR(var, 2.0 / fan_in, 0.2 * 2.0 / fan_in);
}

TEST(RandomTest, XavierBoundsRespected) {
  Rng rng(22);
  Tensor w = xavier_uniform({1000}, 10, 20, rng);
  const float a = std::sqrt(6.0F / 30.0F);
  EXPECT_LE(w.max_value(), a);
  EXPECT_GE(w.min_value(), -a);
}

}  // namespace
}  // namespace ttsnn
